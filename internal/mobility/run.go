package mobility

import (
	"fmt"
	"math"
	"math/rand"

	"e2efair/internal/core"
	"e2efair/internal/flow"
	"e2efair/internal/geom"
	"e2efair/internal/netsim"
	"e2efair/internal/routing"
	"e2efair/internal/sim"
	"e2efair/internal/topology"
	"e2efair/internal/twin"
)

// FlowSpec declares one mobile flow by endpoint node indices.
type FlowSpec struct {
	ID     flow.ID
	Src    int
	Dst    int
	Weight float64 // 1 if zero
}

// Config parameterizes an epochal mobile run: the simulation proceeds
// in epochs; at each epoch boundary node positions advance under the
// waypoint model, routes are recomputed, the first phase reallocates
// over the reachable flows, and the packet simulator runs the epoch.
// Forwarding queues are flushed at epoch boundaries (an explicit
// simplification, stated in DESIGN.md).
type Config struct {
	Nodes    int
	Waypoint WaypointConfig
	Flows    []FlowSpec
	Protocol netsim.Protocol
	Epoch    sim.Time // default 10 s
	Duration sim.Time // default 100 s
	Seed     int64
	TxRange  float64 // default 250 m
	// Rebuild selects the full per-epoch rebuild pipeline — fresh
	// topology, per-flow shortest-path searches, instance, and
	// allocator every epoch — instead of the default incremental one.
	// It is the reference baseline the incremental pipeline is
	// benchmarked against; the incremental pipeline additionally keeps
	// a flow's previous route while it remains a valid shortcut-free
	// path (DSR-style route maintenance), where Rebuild always
	// switches to a current shortest path.
	Rebuild bool
	// Net carries packet-level parameters (rate, queue, α…); its
	// Protocol/Duration/Seed fields are managed per epoch.
	Net netsim.Config
}

// EpochStat reports one epoch.
type EpochStat struct {
	Start sim.Time
	// Routed counts flows with a usable route this epoch.
	Routed int
	// Broken counts flows whose previous route lost a link.
	Broken int
	// Rerouted counts flows whose route changed (including repairs).
	Rerouted int
	// Delivered and Lost are the epoch's packet counts.
	Delivered int64
	Lost      int64
	// Allocation is the per-flow share vector used this epoch.
	Allocation core.FlowAllocation
	// Screened marks an epoch priced by the analytical twin
	// (netsim.Config.Twin) instead of the packet simulator;
	// TwinConfidence is the twin's self-reported confidence then.
	Screened       bool
	TwinConfidence float64
}

// Result aggregates a mobile run.
type Result struct {
	Epochs []EpochStat
	// PerFlow sums end-to-end deliveries across epochs.
	PerFlow map[flow.ID]int64
	// TotalDelivered and TotalLost sum across epochs.
	TotalDelivered int64
	TotalLost      int64
	// RouteBreaks counts link breakages across the run.
	RouteBreaks int
	// Unreachable counts flow-epochs without any route.
	Unreachable int
	// EpochsScreened and EpochsSimulated split the epochs that carried
	// traffic between twin-priced and packet-simulated ones.
	EpochsScreened  int
	EpochsSimulated int
	// TwinMinConfidence is the lowest twin confidence across screened
	// epochs; 0 when no epoch was screened.
	TwinMinConfidence float64
}

// Run executes the epochal mobile simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Nodes <= 0 || len(cfg.Flows) == 0 {
		return nil, fmt.Errorf("mobility: need nodes and flows")
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 10 * sim.Second
	}
	if cfg.Duration == 0 {
		cfg.Duration = 100 * sim.Second
	}
	if cfg.TxRange == 0 {
		cfg.TxRange = topology.DefaultRange
	}
	for _, f := range cfg.Flows {
		if f.Src < 0 || f.Src >= cfg.Nodes || f.Dst < 0 || f.Dst >= cfg.Nodes || f.Src == f.Dst {
			return nil, fmt.Errorf("mobility: flow %s has bad endpoints (%d, %d)", f.ID, f.Src, f.Dst)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	wp, err := NewWaypoint(cfg.Nodes, cfg.Waypoint, rng)
	if err != nil {
		return nil, err
	}
	if cfg.Net.ShardSim && cfg.Net.Sharder == nil {
		// One sharder spans the whole run: epochs that leave a radio
		// component's adjacency untouched reuse its cached sub-topology
		// instead of re-deriving it, so mobility re-shards incrementally.
		cfg.Net.Sharder = netsim.NewSharder()
	}
	if cfg.Rebuild {
		return runRebuild(cfg, wp)
	}
	return runIncremental(cfg, wp)
}

// runRebuild is the reference epoch loop: every epoch rebuilds the
// topology from scratch, re-searches every flow's shortest path, and
// constructs a fresh instance and allocator. Kept as the oracle the
// incremental pipeline is cross-checked and benchmarked against.
func runRebuild(cfg Config, wp *Waypoint) (*Result, error) {
	res := &Result{PerFlow: make(map[flow.ID]int64, len(cfg.Flows))}
	prevRoutes := make(map[flow.ID][]topology.NodeID, len(cfg.Flows))
	var twinAlloc *core.Allocator

	for start := sim.Time(0); start < cfg.Duration; start += cfg.Epoch {
		topo, err := buildTopo(wp.Positions(), cfg.TxRange)
		if err != nil {
			return nil, err
		}
		ep := EpochStat{Start: start}
		// Detect breakage of last epoch's routes.
		for _, route := range prevRoutes {
			for i := 0; i+1 < len(route); i++ {
				if !topo.InTxRange(route[i], route[i+1]) {
					ep.Broken++
					res.RouteBreaks++
					break
				}
			}
		}
		// Recompute routes.
		set, routes, err := routeFlows(topo, cfg.Flows)
		if err != nil {
			return nil, err
		}
		for id, route := range routes {
			if prev, ok := prevRoutes[id]; ok && !samePath(prev, route) {
				ep.Rerouted++
			}
		}
		res.Unreachable += len(cfg.Flows) - len(routes)
		ep.Routed = len(routes)
		prevRoutes = routes

		if set != nil && set.Len() > 0 {
			inst, err := core.NewInstance(topo, set)
			if err != nil {
				return nil, err
			}
			netCfg := epochNetConfig(cfg, start)
			screened := false
			if twinEpoch(cfg, len(res.Epochs)) {
				// The twin needs the epoch's shares; rebuild mode has no
				// share cache, so solve on a twin-private allocator —
				// netsim.Run allocates its own, so simulated epochs stay
				// byte-identical either way.
				if twinAlloc == nil {
					twinAlloc = core.NewAllocator()
				}
				shares, err := netsim.SolveShares(twinAlloc, inst, cfg.Protocol)
				if err != nil {
					return nil, err
				}
				if est, terr := netsim.TwinEstimate(inst, netCfg, shares); terr == nil && est.Confident {
					accountTwinEpoch(res, &ep, set, est, shares)
					screened = true
				}
			}
			if !screened {
				run, err := netsim.Run(inst, netCfg)
				if err != nil {
					return nil, err
				}
				accountEpoch(res, &ep, set, run)
				res.EpochsSimulated++
			}
		}
		res.Epochs = append(res.Epochs, ep)
		wp.Advance(cfg.Epoch)
	}
	return res, nil
}

// maxCachedInstances bounds the incremental loop's instance cache; on
// overflow the cache is cleared rather than evicted piecemeal, since a
// mobile run that cycles through this many distinct (adjacency, route
// set) states gets little from reuse anyway.
const maxCachedInstances = 64

// runIncremental is the epoch loop with work reuse across epochs: one
// topology Snapshotter (grid, arenas, change detection), DSR-style
// route maintenance that keeps still-valid routes and batches repairs
// by source through one BFS tree, flow/set/instance reuse whenever the
// (adjacency, routes) state repeats, and one allocator whose solver
// scratch and group share cache span the whole run — an epoch that
// perturbs some contention components re-solves only those components'
// group LPs and copies cached shares for the rest.
func runIncremental(cfg Config, wp *Waypoint) (*Result, error) {
	res := &Result{PerFlow: make(map[flow.ID]int64, len(cfg.Flows))}
	names := make([]string, cfg.Nodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
	}
	snap, err := topology.NewSnapshotter(names, cfg.TxRange, 0)
	if err != nil {
		return nil, err
	}
	allocator := core.NewAllocator()
	var (
		pos       []geom.Point
		bt        routing.BFSTree
		pending   []int // spec indices needing a fresh route
		srcOrder  []topology.NodeID
		keyBuf    []byte
		curFlows  []*flow.Flow
		prevFlows []*flow.Flow
		prevSet   *flow.Set
	)
	prevRoutes := make(map[flow.ID][]topology.NodeID, len(cfg.Flows))
	flowCache := make(map[flow.ID]*flow.Flow, len(cfg.Flows))
	flowPaths := make(map[flow.ID][]topology.NodeID, len(cfg.Flows))
	instCache := make(map[string]*core.Instance)
	shareCache := make(map[string]core.SubflowAllocation)
	bySrc := make(map[topology.NodeID][]int)

	for start := sim.Time(0); start < cfg.Duration; start += cfg.Epoch {
		pos = wp.AppendPositions(pos[:0])
		topo, changed, err := snap.Snapshot(pos)
		if err != nil {
			return nil, err
		}
		ep := EpochStat{Start: start}

		routes := prevRoutes
		if changed || len(res.Epochs) == 0 {
			// Breakage scan, identical to the rebuild baseline. When the
			// adjacency is unchanged no link can have broken (tx range ==
			// interference range here), so the scan is skipped outright.
			for _, route := range prevRoutes {
				for i := 0; i+1 < len(route); i++ {
					if !topo.InTxRange(route[i], route[i+1]) {
						ep.Broken++
						res.RouteBreaks++
						break
					}
				}
			}
			// Route maintenance: a flow keeps its previous route while it
			// remains a valid shortcut-free path; the rest are repaired in
			// batches — one BFS per distinct source node answers every
			// flow originating there.
			routes = make(map[flow.ID][]topology.NodeID, len(cfg.Flows))
			pending = pending[:0]
			for si, fs := range cfg.Flows {
				if prev, ok := prevRoutes[fs.ID]; ok && routing.PathStillValid(topo, prev) {
					routes[fs.ID] = prev
					continue
				}
				pending = append(pending, si)
			}
			srcOrder = srcOrder[:0]
			for _, si := range pending {
				src := topology.NodeID(cfg.Flows[si].Src)
				if _, ok := bySrc[src]; !ok {
					srcOrder = append(srcOrder, src)
				}
				bySrc[src] = append(bySrc[src], si)
			}
			for _, src := range srcOrder {
				if err := bt.Build(topo, src); err != nil {
					return nil, err
				}
				for _, si := range bySrc[src] {
					fs := cfg.Flows[si]
					dst := topology.NodeID(fs.Dst)
					if !bt.Reached(dst) {
						continue // unreachable this epoch
					}
					path, err := bt.PathTo(dst)
					if err != nil {
						return nil, err
					}
					routes[fs.ID] = path
				}
				delete(bySrc, src)
			}
			for id, route := range routes {
				if prev, ok := prevRoutes[id]; ok && !samePath(prev, route) {
					ep.Rerouted++
				}
			}
		}
		res.Unreachable += len(cfg.Flows) - len(routes)
		ep.Routed = len(routes)
		prevRoutes = routes

		// Assemble the epoch's flow set in spec order, reusing flow
		// objects whose route is unchanged, and building the instance
		// cache key (adjacency fingerprint + flow IDs + routes) as we go.
		fp := topo.AdjacencyFingerprint()
		keyBuf = keyBuf[:0]
		for shift := 0; shift < 64; shift += 8 {
			keyBuf = append(keyBuf, byte(fp>>shift))
		}
		curFlows = curFlows[:0]
		for _, fs := range cfg.Flows {
			route, ok := routes[fs.ID]
			if !ok {
				continue
			}
			f := flowCache[fs.ID]
			if f == nil || !samePath(flowPaths[fs.ID], route) {
				weight := fs.Weight
				if weight == 0 {
					weight = 1
				}
				f, err = flow.New(fs.ID, weight, route)
				if err != nil {
					return nil, err
				}
				flowCache[fs.ID] = f
				flowPaths[fs.ID] = route
			}
			curFlows = append(curFlows, f)
			keyBuf = append(keyBuf, fs.ID...)
			keyBuf = append(keyBuf, 0)
			for _, n := range route {
				v := uint32(n)
				keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			keyBuf = append(keyBuf, 0xFF)
		}
		set := prevSet
		if set == nil || !sameFlowObjects(prevFlows, curFlows) {
			set, err = flow.NewSet(curFlows...)
			if err != nil {
				return nil, err
			}
		}
		prevFlows = append(prevFlows[:0], curFlows...)
		prevSet = set

		if set.Len() > 0 {
			key := string(keyBuf)
			inst, hit := instCache[key]
			// A fingerprint collision could alias two adjacencies to one
			// key; verify exactly before trusting a hit.
			if hit && !inst.Topo.EqualAdjacency(topo) {
				hit = false
			}
			if !hit {
				inst, err = core.NewInstance(topo, set)
				if err != nil {
					return nil, err
				}
				if len(instCache) >= maxCachedInstances {
					clear(instCache)
					clear(shareCache)
				}
				instCache[key] = inst
			}
			netCfg := epochNetConfig(cfg, start)
			// The first-phase solve is deterministic per instance, so a
			// repeated (adjacency, routes) state replays its cached
			// allocation instead of re-running the solver.
			netCfg.Shares = shareCache[key]
			screened := false
			if twinEpoch(cfg, len(res.Epochs)) {
				shares := netCfg.Shares
				if shares == nil {
					// Solve through the shared allocator exactly as RunWith
					// would, so allocator and share-cache state — and with
					// them the epochs that do simulate — evolve identically
					// to an unscreened run.
					shares, err = netsim.SolveShares(allocator, inst, cfg.Protocol)
					if err != nil {
						return nil, err
					}
					if shares != nil {
						shareCache[key] = shares
					}
				}
				if est, terr := netsim.TwinEstimate(inst, netCfg, shares); terr == nil && est.Confident {
					accountTwinEpoch(res, &ep, set, est, shares)
					screened = true
				}
			}
			if !screened {
				run, err := netsim.RunWith(allocator, inst, netCfg)
				if err != nil {
					return nil, err
				}
				if run.Shares != nil {
					shareCache[key] = run.Shares
				}
				accountEpoch(res, &ep, set, run)
				res.EpochsSimulated++
			}
		}
		res.Epochs = append(res.Epochs, ep)
		wp.Advance(cfg.Epoch)
	}
	return res, nil
}

// twinEpoch reports whether this epoch may be priced by the analytical
// twin: screening must be enabled, the config must carry no feature
// the twin cannot model (traces, sampling, fault plans), and the epoch
// must be off the drift-control cadence — every Cadence()-th epoch
// (including epoch 0) simulates regardless, anchoring the twin.
func twinEpoch(cfg Config, epoch int) bool {
	n := cfg.Net
	if n.Twin == nil || n.Tracer != nil || n.SampleEvery > 0 || n.Fault != nil {
		return false
	}
	return epoch%n.Twin.Cadence() != 0
}

// accountTwinEpoch folds a twin estimate into the epoch stat and run
// totals, mirroring accountEpoch's shape for simulated runs.
func accountTwinEpoch(res *Result, ep *EpochStat, set *flow.Set, est *twin.Estimate, shares core.SubflowAllocation) {
	ep.Screened = true
	ep.TwinConfidence = est.Confidence
	ep.Delivered = int64(math.Round(est.TotalPkt))
	ep.Lost = int64(math.Round(est.LossPkt))
	res.TotalDelivered += ep.Delivered
	res.TotalLost += ep.Lost
	for _, fe := range est.Flows {
		res.PerFlow[fe.ID] += int64(math.Round(fe.Packets))
	}
	if shares != nil {
		ep.Allocation = make(core.FlowAllocation, set.Len())
		for _, f := range set.Flows() {
			if s, ok := shares[flow.SubflowID{Flow: f.ID(), Hop: 0}]; ok {
				ep.Allocation[f.ID()] = s
			}
		}
	}
	res.EpochsScreened++
	if res.TwinMinConfidence == 0 || est.Confidence < res.TwinMinConfidence {
		res.TwinMinConfidence = est.Confidence
	}
}

// epochNetConfig derives one epoch's packet-level config: the run's
// protocol, the epoch as duration, and a per-epoch seed.
func epochNetConfig(cfg Config, start sim.Time) netsim.Config {
	netCfg := cfg.Net
	netCfg.Protocol = cfg.Protocol
	netCfg.Duration = cfg.Epoch
	netCfg.Seed = cfg.Seed + int64(start)
	return netCfg
}

// accountEpoch folds one epoch's packet-run metrics into the epoch
// stat and run totals.
func accountEpoch(res *Result, ep *EpochStat, set *flow.Set, run *netsim.Result) {
	ep.Delivered = run.Stats.TotalEndToEnd()
	ep.Lost = run.Stats.Lost()
	res.TotalDelivered += ep.Delivered
	res.TotalLost += ep.Lost
	for _, f := range set.Flows() {
		res.PerFlow[f.ID()] += run.Stats.EndToEnd(f.ID())
	}
	if run.Shares != nil {
		ep.Allocation = make(core.FlowAllocation, set.Len())
		for _, f := range set.Flows() {
			if s, ok := run.Shares[flow.SubflowID{Flow: f.ID(), Hop: 0}]; ok {
				ep.Allocation[f.ID()] = s
			}
		}
	}
}

// buildTopo snapshots positions into a topology.
func buildTopo(pos []geom.Point, txRange float64) (*topology.Topology, error) {
	b := topology.NewBuilder(txRange, 0)
	for i, p := range pos {
		b.Add(fmt.Sprintf("n%d", i), p.X, p.Y)
	}
	return b.Build()
}

// routeFlows computes shortest-path routes for the reachable flows and
// wraps them in a flow set. Unreachable flows are skipped.
func routeFlows(topo *topology.Topology, specs []FlowSpec) (*flow.Set, map[flow.ID][]topology.NodeID, error) {
	set, err := flow.NewSet()
	if err != nil {
		return nil, nil, err
	}
	routes := make(map[flow.ID][]topology.NodeID, len(specs))
	for _, fs := range specs {
		path, err := routing.ShortestPath(topo, topology.NodeID(fs.Src), topology.NodeID(fs.Dst))
		if err != nil {
			continue // unreachable this epoch
		}
		weight := fs.Weight
		if weight == 0 {
			weight = 1
		}
		f, err := flow.New(fs.ID, weight, path)
		if err != nil {
			return nil, nil, err
		}
		if err := set.Add(f); err != nil {
			return nil, nil, err
		}
		routes[fs.ID] = path
	}
	return set, routes, nil
}

// samePath reports whether two routes are identical.
func samePath(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameFlowObjects reports whether two flow lists hold the identical
// objects in the same order, which (with the flow cache) means the
// epoch's set composition is unchanged.
func sameFlowObjects(a, b []*flow.Flow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
