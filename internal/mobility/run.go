package mobility

import (
	"fmt"
	"math/rand"

	"e2efair/internal/core"
	"e2efair/internal/flow"
	"e2efair/internal/geom"
	"e2efair/internal/netsim"
	"e2efair/internal/routing"
	"e2efair/internal/sim"
	"e2efair/internal/topology"
)

// FlowSpec declares one mobile flow by endpoint node indices.
type FlowSpec struct {
	ID     flow.ID
	Src    int
	Dst    int
	Weight float64 // 1 if zero
}

// Config parameterizes an epochal mobile run: the simulation proceeds
// in epochs; at each epoch boundary node positions advance under the
// waypoint model, routes are recomputed, the first phase reallocates
// over the reachable flows, and the packet simulator runs the epoch.
// Forwarding queues are flushed at epoch boundaries (an explicit
// simplification, stated in DESIGN.md).
type Config struct {
	Nodes    int
	Waypoint WaypointConfig
	Flows    []FlowSpec
	Protocol netsim.Protocol
	Epoch    sim.Time // default 10 s
	Duration sim.Time // default 100 s
	Seed     int64
	TxRange  float64 // default 250 m
	// Net carries packet-level parameters (rate, queue, α…); its
	// Protocol/Duration/Seed fields are managed per epoch.
	Net netsim.Config
}

// EpochStat reports one epoch.
type EpochStat struct {
	Start sim.Time
	// Routed counts flows with a usable route this epoch.
	Routed int
	// Broken counts flows whose previous route lost a link.
	Broken int
	// Rerouted counts flows whose route changed (including repairs).
	Rerouted int
	// Delivered and Lost are the epoch's packet counts.
	Delivered int64
	Lost      int64
	// Allocation is the per-flow share vector used this epoch.
	Allocation core.FlowAllocation
}

// Result aggregates a mobile run.
type Result struct {
	Epochs []EpochStat
	// PerFlow sums end-to-end deliveries across epochs.
	PerFlow map[flow.ID]int64
	// TotalDelivered and TotalLost sum across epochs.
	TotalDelivered int64
	TotalLost      int64
	// RouteBreaks counts link breakages across the run.
	RouteBreaks int
	// Unreachable counts flow-epochs without any route.
	Unreachable int
}

// Run executes the epochal mobile simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Nodes <= 0 || len(cfg.Flows) == 0 {
		return nil, fmt.Errorf("mobility: need nodes and flows")
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 10 * sim.Second
	}
	if cfg.Duration == 0 {
		cfg.Duration = 100 * sim.Second
	}
	if cfg.TxRange == 0 {
		cfg.TxRange = topology.DefaultRange
	}
	for _, f := range cfg.Flows {
		if f.Src < 0 || f.Src >= cfg.Nodes || f.Dst < 0 || f.Dst >= cfg.Nodes || f.Src == f.Dst {
			return nil, fmt.Errorf("mobility: flow %s has bad endpoints (%d, %d)", f.ID, f.Src, f.Dst)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	wp, err := NewWaypoint(cfg.Nodes, cfg.Waypoint, rng)
	if err != nil {
		return nil, err
	}
	res := &Result{PerFlow: make(map[flow.ID]int64, len(cfg.Flows))}
	prevRoutes := make(map[flow.ID][]topology.NodeID, len(cfg.Flows))

	for start := sim.Time(0); start < cfg.Duration; start += cfg.Epoch {
		topo, err := buildTopo(wp.Positions(), cfg.TxRange)
		if err != nil {
			return nil, err
		}
		ep := EpochStat{Start: start}
		// Detect breakage of last epoch's routes.
		for _, route := range prevRoutes {
			for i := 0; i+1 < len(route); i++ {
				if !topo.InTxRange(route[i], route[i+1]) {
					ep.Broken++
					res.RouteBreaks++
					break
				}
			}
		}
		// Recompute routes.
		set, routes, err := routeFlows(topo, cfg.Flows)
		if err != nil {
			return nil, err
		}
		for id, route := range routes {
			if prev, ok := prevRoutes[id]; ok && !samePath(prev, route) {
				ep.Rerouted++
			}
		}
		res.Unreachable += len(cfg.Flows) - len(routes)
		ep.Routed = len(routes)
		prevRoutes = routes

		if set != nil && set.Len() > 0 {
			inst, err := core.NewInstance(topo, set)
			if err != nil {
				return nil, err
			}
			netCfg := cfg.Net
			netCfg.Protocol = cfg.Protocol
			netCfg.Duration = cfg.Epoch
			netCfg.Seed = cfg.Seed + int64(start)
			run, err := netsim.Run(inst, netCfg)
			if err != nil {
				return nil, err
			}
			ep.Delivered = run.Stats.TotalEndToEnd()
			ep.Lost = run.Stats.Lost()
			res.TotalDelivered += ep.Delivered
			res.TotalLost += ep.Lost
			for _, f := range set.Flows() {
				res.PerFlow[f.ID()] += run.Stats.EndToEnd(f.ID())
			}
			if run.Shares != nil {
				ep.Allocation = make(core.FlowAllocation, set.Len())
				for _, f := range set.Flows() {
					if s, ok := run.Shares[flow.SubflowID{Flow: f.ID(), Hop: 0}]; ok {
						ep.Allocation[f.ID()] = s
					}
				}
			}
		}
		res.Epochs = append(res.Epochs, ep)
		wp.Advance(cfg.Epoch)
	}
	return res, nil
}

// buildTopo snapshots positions into a topology.
func buildTopo(pos []geom.Point, txRange float64) (*topology.Topology, error) {
	b := topology.NewBuilder(txRange, 0)
	for i, p := range pos {
		b.Add(fmt.Sprintf("n%d", i), p.X, p.Y)
	}
	return b.Build()
}

// routeFlows computes shortest-path routes for the reachable flows and
// wraps them in a flow set. Unreachable flows are skipped.
func routeFlows(topo *topology.Topology, specs []FlowSpec) (*flow.Set, map[flow.ID][]topology.NodeID, error) {
	set, err := flow.NewSet()
	if err != nil {
		return nil, nil, err
	}
	routes := make(map[flow.ID][]topology.NodeID, len(specs))
	for _, fs := range specs {
		path, err := routing.ShortestPath(topo, topology.NodeID(fs.Src), topology.NodeID(fs.Dst))
		if err != nil {
			continue // unreachable this epoch
		}
		weight := fs.Weight
		if weight == 0 {
			weight = 1
		}
		f, err := flow.New(fs.ID, weight, path)
		if err != nil {
			return nil, nil, err
		}
		if err := set.Add(f); err != nil {
			return nil, nil, err
		}
		routes[fs.ID] = path
	}
	return set, routes, nil
}

// samePath reports whether two routes are identical.
func samePath(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
