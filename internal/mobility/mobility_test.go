package mobility_test

import (
	"math/rand"
	"testing"

	"e2efair/internal/mobility"
	"e2efair/internal/netsim"
	"e2efair/internal/sim"
)

func wpCfg() mobility.WaypointConfig {
	return mobility.WaypointConfig{
		Width: 1000, Height: 800,
		MinSpeed: 1, MaxSpeed: 10,
		MaxPause: 2 * sim.Second,
	}
}

func TestWaypointValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := mobility.NewWaypoint(0, wpCfg(), rng); err == nil {
		t.Error("zero nodes should fail")
	}
	bad := wpCfg()
	bad.MinSpeed = 0
	if _, err := mobility.NewWaypoint(3, bad, rng); err == nil {
		t.Error("zero min speed should fail")
	}
	bad = wpCfg()
	bad.MaxSpeed = 0.5
	if _, err := mobility.NewWaypoint(3, bad, rng); err == nil {
		t.Error("max below min should fail")
	}
}

func TestWaypointStaysInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	wp, err := mobility.NewWaypoint(20, wpCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 50; step++ {
		wp.Advance(5 * sim.Second)
		for i, p := range wp.Positions() {
			if p.X < -1e-9 || p.X > 1000+1e-9 || p.Y < -1e-9 || p.Y > 800+1e-9 {
				t.Fatalf("step %d: node %d escaped to %v", step, i, p)
			}
		}
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	wp, err := mobility.NewWaypoint(10, wpCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	prev := wp.Positions()
	const dt = 2 * sim.Second
	for step := 0; step < 30; step++ {
		wp.Advance(dt)
		cur := wp.Positions()
		for i := range cur {
			moved := prev[i].Dist(cur[i])
			// Maximum displacement: MaxSpeed over the whole window
			// (pauses and waypoint turns only reduce it).
			if moved > 10*dt.Seconds()+1e-6 {
				t.Fatalf("node %d moved %.2f m in %v (max speed 10 m/s)", i, moved, dt)
			}
		}
		prev = cur
	}
}

func TestWaypointDeterministic(t *testing.T) {
	run := func() []float64 {
		rng := rand.New(rand.NewSource(7))
		wp, err := mobility.NewWaypoint(5, wpCfg(), rng)
		if err != nil {
			t.Fatal(err)
		}
		wp.Advance(30 * sim.Second)
		var out []float64
		for _, p := range wp.Positions() {
			out = append(out, p.X, p.Y)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("waypoint model not deterministic")
		}
	}
}

func TestMobileRun(t *testing.T) {
	res, err := mobility.Run(mobility.Config{
		Nodes:    20,
		Waypoint: wpCfg(),
		Flows: []mobility.FlowSpec{
			{ID: "F1", Src: 0, Dst: 10},
			{ID: "F2", Src: 5, Dst: 15},
		},
		Protocol: netsim.Protocol2PAC,
		Epoch:    5 * sim.Second,
		Duration: 40 * sim.Second,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 8 {
		t.Fatalf("epochs = %d, want 8", len(res.Epochs))
	}
	if res.TotalDelivered == 0 {
		t.Error("nothing delivered across the mobile run")
	}
	var delivered int64
	for _, ep := range res.Epochs {
		delivered += ep.Delivered
		if ep.Routed > 2 {
			t.Errorf("epoch routed %d of 2 flows", ep.Routed)
		}
	}
	if delivered != res.TotalDelivered {
		t.Errorf("epoch sum %d != total %d", delivered, res.TotalDelivered)
	}
}

func TestMobileRunValidation(t *testing.T) {
	if _, err := mobility.Run(mobility.Config{Nodes: 0}); err == nil {
		t.Error("no nodes should fail")
	}
	if _, err := mobility.Run(mobility.Config{
		Nodes:    5,
		Waypoint: wpCfg(),
		Flows:    []mobility.FlowSpec{{ID: "F", Src: 0, Dst: 9}},
	}); err == nil {
		t.Error("bad endpoint should fail")
	}
}

// TestMobilityCausesBreakage: at high speed over a long run, some
// route must break; with (near-)zero motion, none should.
func TestMobilityCausesBreakage(t *testing.T) {
	fast := wpCfg()
	fast.MinSpeed, fast.MaxSpeed = 30, 50
	fast.MaxPause = 0
	res, err := mobility.Run(mobility.Config{
		Nodes:    25,
		Waypoint: fast,
		Flows: []mobility.FlowSpec{
			{ID: "F1", Src: 0, Dst: 20}, {ID: "F2", Src: 3, Dst: 17}, {ID: "F3", Src: 7, Dst: 22},
		},
		Protocol: netsim.Protocol2PAC,
		Epoch:    5 * sim.Second,
		Duration: 60 * sim.Second,
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RouteBreaks == 0 {
		t.Error("fast mobility should break routes")
	}
	slow := wpCfg()
	slow.MinSpeed, slow.MaxSpeed = 0.001, 0.002
	res2, err := mobility.Run(mobility.Config{
		Nodes:    25,
		Waypoint: slow,
		Flows:    []mobility.FlowSpec{{ID: "F1", Src: 0, Dst: 20}},
		Protocol: netsim.Protocol2PAC,
		Epoch:    5 * sim.Second,
		Duration: 30 * sim.Second,
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.RouteBreaks != 0 {
		t.Errorf("near-static nodes broke %d routes", res2.RouteBreaks)
	}
}
