package mobility_test

import (
	"fmt"
	"reflect"
	"testing"

	"e2efair/internal/flow"
	"e2efair/internal/mobility"
	"e2efair/internal/netsim"
	"e2efair/internal/sim"
)

func mobileCfg(rebuild bool) mobility.Config {
	return mobility.Config{
		Nodes:    22,
		Waypoint: wpCfg(),
		Flows: []mobility.FlowSpec{
			{ID: "F1", Src: 0, Dst: 10},
			{ID: "F2", Src: 5, Dst: 15},
			{ID: "F3", Src: 2, Dst: 19, Weight: 2},
		},
		Protocol: netsim.Protocol2PAC,
		Epoch:    5 * sim.Second,
		Duration: 40 * sim.Second,
		Seed:     17,
		Rebuild:  rebuild,
	}
}

// TestRunDeterministic pins both pipelines: two runs of the same
// config must agree on every field of every epoch.
func TestRunDeterministic(t *testing.T) {
	for _, rebuild := range []bool{false, true} {
		a, err := mobility.Run(mobileCfg(rebuild))
		if err != nil {
			t.Fatal(err)
		}
		b, err := mobility.Run(mobileCfg(rebuild))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("rebuild=%v: two identical runs diverged", rebuild)
		}
	}
}

// TestIncrementalMatchesRebuildInvariants cross-checks the incremental
// pipeline against the retained rebuild baseline. Routability is a
// function of adjacency alone, so Routed/Unreachable must agree
// epoch-for-epoch even after the two pipelines' routes diverge (the
// incremental one keeps valid routes, the baseline re-shortests). The
// first epoch has no previous routes to keep, so it must match the
// baseline exactly, packet counts included.
func TestIncrementalMatchesRebuildInvariants(t *testing.T) {
	inc, err := mobility.Run(mobileCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	reb, err := mobility.Run(mobileCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Epochs) != len(reb.Epochs) {
		t.Fatalf("epoch counts differ: %d vs %d", len(inc.Epochs), len(reb.Epochs))
	}
	if inc.Unreachable != reb.Unreachable {
		t.Errorf("Unreachable: incremental %d, rebuild %d", inc.Unreachable, reb.Unreachable)
	}
	for i := range inc.Epochs {
		if inc.Epochs[i].Start != reb.Epochs[i].Start {
			t.Fatalf("epoch %d start differs", i)
		}
		if inc.Epochs[i].Routed != reb.Epochs[i].Routed {
			t.Errorf("epoch %d: Routed %d vs %d", i, inc.Epochs[i].Routed, reb.Epochs[i].Routed)
		}
	}
	first, firstReb := inc.Epochs[0], reb.Epochs[0]
	if first.Delivered != firstReb.Delivered || first.Lost != firstReb.Lost ||
		!reflect.DeepEqual(first.Allocation, firstReb.Allocation) {
		t.Errorf("first epoch differs: incremental %+v, rebuild %+v", first, firstReb)
	}
}

// TestIncrementalNearStaticMatchesRebuild: when nodes barely move the
// adjacency never changes, every route survives, and the two pipelines
// must produce identical results end to end — the strongest statement
// that topology/instance reuse does not alter behavior.
func TestIncrementalNearStaticMatchesRebuild(t *testing.T) {
	base := mobileCfg(false)
	base.Waypoint.MinSpeed, base.Waypoint.MaxSpeed = 0.001, 0.002
	base.Waypoint.MaxPause = 0
	inc, err := mobility.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Rebuild = true
	reb, err := mobility.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inc, reb) {
		t.Fatalf("near-static incremental run differs from rebuild:\nincremental %+v\nrebuild %+v", inc, reb)
	}
}

// TestRebuildModeBasics keeps the baseline pipeline covered by the
// same smoke assertions TestMobileRun applies to the default one.
func TestRebuildModeBasics(t *testing.T) {
	res, err := mobility.Run(mobileCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 8 {
		t.Fatalf("epochs = %d, want 8", len(res.Epochs))
	}
	var delivered int64
	for _, ep := range res.Epochs {
		delivered += ep.Delivered
	}
	if delivered != res.TotalDelivered {
		t.Errorf("epoch sum %d != total %d", delivered, res.TotalDelivered)
	}
}

// benchmarkMobilityEpoch runs a whole mobile simulation sized so the
// epoch pipeline (topology, routing, instance construction) dominates
// over the deliberately tiny packet phase, and reports per-epoch cost.
func benchmarkMobilityEpoch(b *testing.B, rebuild bool) {
	flows := make([]mobility.FlowSpec, 10)
	for i := range flows {
		flows[i] = mobility.FlowSpec{
			ID:  flow.ID(fmt.Sprintf("F%d", i+1)),
			Src: i * 8, Dst: 75 + i*7,
		}
	}
	cfg := mobility.Config{
		Nodes: 150,
		Waypoint: mobility.WaypointConfig{
			Width: 1800, Height: 1800,
			// Slow enough that most epoch boundaries leave the adjacency
			// unchanged — the regime the incremental pipeline targets.
			MinSpeed: 0.01, MaxSpeed: 0.1,
		},
		Flows:    flows,
		Protocol: netsim.Protocol2PAC,
		Epoch:    2 * sim.Second,
		Duration: 60 * sim.Second,
		Seed:     5,
		Rebuild:  rebuild,
		Net:      netsim.Config{PacketsPerS: 1},
	}
	epochs := int(cfg.Duration / cfg.Epoch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := mobility.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Epochs) != epochs {
			b.Fatalf("epochs = %d", len(res.Epochs))
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*epochs)/1e6, "ms/epoch")
}

func BenchmarkMobilityEpoch(b *testing.B) {
	b.Run("incremental", func(b *testing.B) { benchmarkMobilityEpoch(b, false) })
	b.Run("rebuild", func(b *testing.B) { benchmarkMobilityEpoch(b, true) })
}
