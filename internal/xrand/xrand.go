// Package xrand provides the compact deterministic per-node random
// streams the packet layer draws from. Each stream is a splitmix64
// generator — 8 bytes of state, value-embeddable in a node struct —
// seeded from the run seed XOR an FNV-1a hash of the node's *global*
// identifier. Because a stream's seed depends only on the run seed and
// the node's identity, and its draw order only on that node's own
// event order, draw sequences are invariant under shard assignment:
// simulating an interference-disjoint component on its own engine
// replays exactly the draws the node would have made on a global
// engine. (A process-shared math/rand source, by contrast, interleaves
// draws in whole-engine event order and changes values whenever any
// other component's schedule shifts.)
package xrand

// FNV-1a constants, matching topology's adjacency fingerprint.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Rand is a splitmix64 stream. The zero value is a valid stream seeded
// with 0; use New or NodeStream for explicit seeding. Not safe for
// concurrent use — each node owns its stream exclusively.
type Rand struct {
	state uint64
}

// New returns a stream with the given seed.
func New(seed uint64) Rand { return Rand{state: seed} }

// NodeStream derives the per-node stream for a run: seed XOR
// FNV-1a(node), hashing the node ID's eight little-endian bytes. The
// hash spreads adjacent node IDs across the seed space so streams of
// neighboring nodes are uncorrelated even under a zero run seed.
func NodeStream(seed int64, node uint64) Rand {
	h := fnvOffset
	for i := 0; i < 8; i++ {
		h = (h ^ (node & 0xFF)) * fnvPrime
		node >>= 8
	}
	return Rand{state: uint64(seed) ^ h}
}

// Uint64 advances the stream and returns the next 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). Panics if n <= 0. Uses a
// multiply-shift reduction of the top 32 bits; n must fit in int32,
// which covers every backoff window and jitter draw in the simulator.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	if n > 1<<31-1 {
		panic("xrand: Intn bound exceeds int32")
	}
	return int((r.Uint64() >> 32) * uint64(n) >> 32)
}

// Float64 returns a value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
