package xrand

import "testing"

// TestDeterminism pins the generator as a pure function of its seed.
func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	c := New(12346)
	same := 0
	d := New(12345)
	for i := 0; i < 1000; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent seeds collided on %d of 1000 draws", same)
	}
}

// TestNodeStreamIndependence checks the property the sharded simulator
// rests on: a node's stream depends only on (run seed, global node ID),
// never on which other nodes exist or in what order they were seeded.
func TestNodeStreamIndependence(t *testing.T) {
	r1 := NodeStream(7, 42)
	// Same node reached via a different "seeding order" — NodeStream is
	// stateless, so this is trivially equal; the test documents the
	// contract.
	r2 := NodeStream(7, 42)
	for i := 0; i < 100; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("node stream not a pure function of (seed, id)")
		}
	}
	// Distinct nodes under one seed must not share a stream.
	a, b := NodeStream(7, 0), NodeStream(7, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("node 0 and node 1 streams collided on %d of 1000 draws", same)
	}
	// Same node under different run seeds must differ too.
	c, d := NodeStream(7, 5), NodeStream(8, 5)
	if c.Uint64() == d.Uint64() && c.Uint64() == d.Uint64() {
		t.Error("run seed does not separate node streams")
	}
}

// TestIntn checks range and rejects invalid bounds.
func TestIntn(t *testing.T) {
	r := New(1)
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		v := r.Intn(8)
		if v < 0 || v >= 8 {
			t.Fatalf("Intn(8) = %d out of range", v)
		}
		seen[v]++
	}
	for v := 0; v < 8; v++ {
		// 10000 draws over 8 buckets: anything alive is fine, a dead
		// bucket means the multiply-shift is broken.
		if seen[v] == 0 {
			t.Errorf("Intn(8) never produced %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

// TestFloat64 checks the unit-interval contract.
func TestFloat64(t *testing.T) {
	r := New(99)
	var sum float64
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Errorf("mean of 10000 draws = %g, want ≈0.5", mean)
	}
}
