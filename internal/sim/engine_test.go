package sim

import (
	"errors"
	"testing"
)

func TestRunOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	_ = e.Schedule(30, 0, func() { order = append(order, 3) })
	_ = e.Schedule(10, 0, func() { order = append(order, 1) })
	_ = e.Schedule(20, 0, func() { order = append(order, 2) })
	n := e.Run(100)
	if n != 3 {
		t.Fatalf("ran %d events", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 100 {
		t.Errorf("Now = %d, want horizon 100", e.Now())
	}
}

func TestPhaseOrdering(t *testing.T) {
	e := NewEngine()
	var order []string
	_ = e.Schedule(10, 2, func() { order = append(order, "late") })
	_ = e.Schedule(10, 0, func() { order = append(order, "early") })
	_ = e.Schedule(10, 1, func() { order = append(order, "mid") })
	e.Run(10)
	if len(order) != 3 || order[0] != "early" || order[1] != "mid" || order[2] != "late" {
		t.Errorf("order = %v", order)
	}
}

func TestFIFOWithinPhase(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		_ = e.Schedule(5, 0, func() { order = append(order, i) })
	}
	e.Run(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("insertion order not preserved: %v", order)
		}
	}
}

// TestScheduleArg checks that closure-free events interleave with
// plain ones in strict (time, phase, insertion) order, carry their
// argument, and reject the past like Schedule.
func TestScheduleArg(t *testing.T) {
	e := NewEngine()
	var order []uint64
	record := func(arg uint64) { order = append(order, arg) }
	_ = e.ScheduleArg(20, 0, record, 3)
	_ = e.Schedule(10, 1, func() { order = append(order, 2) })
	_ = e.ScheduleArg(10, 0, record, 1)
	_ = e.ScheduleArg(20, 0, record, 4)
	e.Run(100)
	if len(order) != 4 || order[0] != 1 || order[1] != 2 || order[2] != 3 || order[3] != 4 {
		t.Errorf("order = %v", order)
	}
	if err := e.ScheduleArg(50, 0, record, 9); !errors.Is(err, ErrPast) {
		t.Errorf("past ScheduleArg err = %v", err)
	}
}

// TestScheduleArgSteadyStateAllocs pins the zero-alloc property the
// MAC relies on: re-scheduling through the event free list with a
// long-lived handler must not allocate.
func TestScheduleArgSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	var fire func(uint64)
	fire = func(arg uint64) {
		if e.Now() < 1_000_000 {
			_ = e.ScheduleArg(e.Now()+10, 0, fire, arg+1)
		}
	}
	_ = e.ScheduleArg(0, 0, fire, 0)
	e.Run(1000) // warm the free list
	allocs := testing.AllocsPerRun(100, func() {
		e.Run(e.Now() + 1000)
	})
	if allocs > 0 {
		t.Errorf("steady-state ScheduleArg allocates %.1f/run, want 0", allocs)
	}
}

func TestScheduleFromCallback(t *testing.T) {
	e := NewEngine()
	var hits []Time
	var emit func()
	emit = func() {
		hits = append(hits, e.Now())
		if e.Now() < 50 {
			_ = e.After(10, 0, emit)
		}
	}
	_ = e.Schedule(0, 0, emit)
	e.Run(1000)
	if len(hits) != 6 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[5] != 50 {
		t.Errorf("last hit at %d", hits[5])
	}
}

func TestPastRejected(t *testing.T) {
	e := NewEngine()
	_ = e.Schedule(100, 0, func() {
		if err := e.Schedule(50, 0, func() {}); !errors.Is(err, ErrPast) {
			t.Errorf("past schedule err = %v", err)
		}
	})
	e.Run(200)
	if err := e.After(-1, 0, func() {}); !errors.Is(err, ErrPast) {
		t.Errorf("negative After err = %v", err)
	}
}

func TestHorizonStops(t *testing.T) {
	e := NewEngine()
	ran := false
	_ = e.Schedule(100, 0, func() { ran = true })
	e.Run(99)
	if ran {
		t.Error("event past the horizon ran")
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
	e.Run(100)
	if !ran {
		t.Error("event at the horizon should run")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		_ = e.Schedule(Time(i), 0, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(100)
	if count != 3 {
		t.Errorf("ran %d events after Stop", count)
	}
}

func TestSeconds(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds = %g", got)
	}
	if got := (500 * Millisecond).Seconds(); got != 0.5 {
		t.Errorf("Seconds = %g", got)
	}
}

func TestReset(t *testing.T) {
	e := NewEngine()
	var fired []int
	for i := 0; i < 8; i++ {
		i := i
		_ = e.Schedule(Time(10*i), 0, func() { fired = append(fired, i) })
	}
	e.Run(35) // leaves events 4..7 pending
	if len(fired) != 4 {
		t.Fatalf("pre-reset ran %d events, want 4", len(fired))
	}
	e.Reset()
	if e.Now() != 0 {
		t.Errorf("Now = %d after Reset, want 0", e.Now())
	}
	// Pending events must be gone and time 0 schedulable again.
	fired = fired[:0]
	_ = e.Schedule(5, 0, func() { fired = append(fired, -1) })
	n := e.Run(100)
	if n != 1 || len(fired) != 1 || fired[0] != -1 {
		t.Errorf("post-reset run: n=%d fired=%v, want just the new event", n, fired)
	}
}

// TestResetRecyclesEvents pins the point of Reset: after a warm-up
// run, a reset engine re-runs the same workload without growing the
// heap or allocating new event records.
func TestResetRecyclesEvents(t *testing.T) {
	e := NewEngine()
	work := func() {
		for i := 0; i < 64; i++ {
			_ = e.Schedule(Time(i), 0, func() {})
		}
		e.Run(1000)
		e.Reset()
	}
	work() // warm free list and heap storage
	allocs := testing.AllocsPerRun(10, work)
	if allocs != 0 {
		t.Errorf("reset-recycled workload allocates %.1f per run, want 0", allocs)
	}
}

// TestResetEquivalence: a reset engine must be indistinguishable from
// a fresh one — same event count, same final clock — even when the
// previous run left pending events behind.
func TestResetEquivalence(t *testing.T) {
	run := func(e *Engine) (int, Time) {
		for i := 0; i < 16; i++ {
			_ = e.Schedule(Time(7*i), Phase(i%3), func() {})
		}
		n := e.Run(50)
		return n, e.Now()
	}
	fresh := NewEngine()
	wantN, wantNow := run(fresh)

	reused := NewEngine()
	_ = reused.Schedule(3, 0, func() {})
	_ = reused.Schedule(999, 0, func() {}) // stays pending
	reused.Run(10)
	reused.Reset()
	gotN, gotNow := run(reused)
	if gotN != wantN || gotNow != wantNow {
		t.Errorf("reset engine ran (%d, %d), fresh ran (%d, %d)", gotN, gotNow, wantN, wantNow)
	}
}
