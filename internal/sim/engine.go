// Package sim provides a deterministic discrete-event simulation
// engine: a virtual clock in microseconds and an event queue ordered
// by (time, phase, insertion sequence). It is the foundation of the
// packet-level wireless simulator that substitutes for ns-2.
package sim

import (
	"container/heap"
	"errors"
)

// Time is simulated time in microseconds.
type Time int64

// Common time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000000
)

// Seconds converts a Time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Phase orders events that fire at the same instant: lower phases run
// first. The MAC uses phases to finish transmissions before new
// contention attempts resolve.
type Phase int

// ErrPast is returned when an event is scheduled before the current
// virtual time.
var ErrPast = errors.New("sim: event scheduled in the past")

type event struct {
	at    Time
	phase Phase
	seq   uint64
	fn    func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].phase != h[j].phase {
		return h[i].phase < h[j].phase
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule enqueues fn to run at the given time and phase. Events in
// the past are rejected.
func (e *Engine) Schedule(at Time, phase Phase, fn func()) error {
	if at < e.now {
		return ErrPast
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, phase: phase, seq: e.seq, fn: fn})
	return nil
}

// After schedules fn to run delay microseconds from now.
func (e *Engine) After(delay Time, phase Phase, fn func()) error {
	if delay < 0 {
		return ErrPast
	}
	return e.Schedule(e.now+delay, phase, fn)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue empties or the next
// event is past the horizon. Events scheduled exactly at the horizon
// still run. It returns the number of events executed.
func (e *Engine) Run(until Time) int {
	e.stopped = false
	n := 0
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		next.fn()
		n++
	}
	if e.now < until {
		e.now = until
	}
	return n
}
