// Package sim provides a deterministic discrete-event simulation
// engine: a virtual clock in microseconds and an event queue ordered
// by (time, phase, insertion sequence). It is the foundation of the
// packet-level wireless simulator that substitutes for ns-2.
package sim

import "errors"

// Time is simulated time in microseconds.
type Time int64

// Common time units.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000000
)

// Seconds converts a Time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Phase orders events that fire at the same instant: lower phases run
// first. The MAC uses phases to finish transmissions before new
// contention attempts resolve.
type Phase int

// ErrPast is returned when an event is scheduled before the current
// virtual time.
var ErrPast = errors.New("sim: event scheduled in the past")

type event struct {
	at    Time
	phase Phase
	seq   uint64
	fn    func()
	// argFn/arg carry the closure-free form used by ScheduleArg: a
	// long-lived handler plus a per-event word, so hot paths schedule
	// without allocating a fresh closure per event.
	argFn func(uint64)
	arg   uint64
}

// before is the queue ordering: (time, phase, insertion sequence).
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.phase != o.phase {
		return e.phase < o.phase
	}
	return e.seq < o.seq
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
//
// The event queue is a hand-rolled binary heap of *event with a free
// list: executed events are recycled into subsequent Schedule calls,
// so a simulation whose pending-event count has plateaued schedules
// with zero allocations.
type Engine struct {
	now     Time
	seq     uint64
	events  []*event
	free    []*event
	stopped bool
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// alloc takes an event from the free list, or the heap when the list
// is dry.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return new(event)
}

// recycle returns an executed event to the free list, dropping its
// closure so the GC can reclaim captured state.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.argFn = nil
	e.free = append(e.free, ev)
}

// push inserts an event into the heap (sift-up).
func (e *Engine) push(ev *event) {
	e.events = append(e.events, ev)
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !ev.before(e.events[parent]) {
			break
		}
		e.events[i] = e.events[parent]
		i = parent
	}
	e.events[i] = ev
}

// pop removes and returns the earliest event (sift-down).
func (e *Engine) pop() *event {
	top := e.events[0]
	n := len(e.events) - 1
	last := e.events[n]
	e.events[n] = nil
	e.events = e.events[:n]
	if n == 0 {
		return top
	}
	i := 0
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && e.events[r].before(e.events[child]) {
			child = r
		}
		if !e.events[child].before(last) {
			break
		}
		e.events[i] = e.events[child]
		i = child
	}
	e.events[i] = last
	return top
}

// Schedule enqueues fn to run at the given time and phase. Events in
// the past are rejected.
func (e *Engine) Schedule(at Time, phase Phase, fn func()) error {
	if at < e.now {
		return ErrPast
	}
	ev := e.alloc()
	e.seq++
	ev.at, ev.phase, ev.seq, ev.fn = at, phase, e.seq, fn
	e.push(ev)
	return nil
}

// ScheduleAt is the fast path for the common phase-0 case: it enqueues
// fn at an absolute time with no phase bookkeeping at the call site.
func (e *Engine) ScheduleAt(at Time, fn func()) error {
	return e.Schedule(at, 0, fn)
}

// ScheduleArg enqueues fn(arg) to run at the given time and phase.
// Unlike Schedule, the handler is a long-lived function value and the
// per-event state travels in arg, so steady-state callers (the MAC's
// backoff expirations) schedule with zero allocations instead of
// building a closure per event.
func (e *Engine) ScheduleArg(at Time, phase Phase, fn func(uint64), arg uint64) error {
	if at < e.now {
		return ErrPast
	}
	ev := e.alloc()
	e.seq++
	ev.at, ev.phase, ev.seq, ev.fn, ev.argFn, ev.arg = at, phase, e.seq, nil, fn, arg
	e.push(ev)
	return nil
}

// After schedules fn to run delay microseconds from now.
func (e *Engine) After(delay Time, phase Phase, fn func()) error {
	if delay < 0 {
		return ErrPast
	}
	return e.Schedule(e.now+delay, phase, fn)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Reset returns the engine to its initial state — time zero, empty
// queue, sequence zero — while keeping the heap storage and moving any
// pending events onto the free list. A reset engine is
// indistinguishable from a fresh NewEngine to callers (the free list
// only recycles memory, never behavior), so sweep workers and
// per-epoch re-runs can reuse one engine instead of reallocating the
// queue each job.
func (e *Engine) Reset() {
	for _, ev := range e.events {
		e.recycle(ev)
	}
	clear(e.events)
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	e.stopped = false
}

// Run executes events in order until the queue empties or the next
// event is past the horizon. Events scheduled exactly at the horizon
// still run. It returns the number of events executed.
func (e *Engine) Run(until Time) int {
	e.stopped = false
	n := 0
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > until {
			break
		}
		ev := e.pop()
		e.now = ev.at
		if ev.fn != nil {
			ev.fn()
		} else {
			ev.argFn(ev.arg)
		}
		e.recycle(ev)
		n++
	}
	if e.now < until {
		e.now = until
	}
	return n
}
