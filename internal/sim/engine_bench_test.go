package sim

import "testing"

func TestScheduleAt(t *testing.T) {
	e := NewEngine()
	var order []int
	_ = e.ScheduleAt(20, func() { order = append(order, 2) })
	_ = e.ScheduleAt(10, func() { order = append(order, 1) })
	_ = e.Schedule(20, 1, func() { order = append(order, 3) }) // later phase at t=20
	_ = e.ScheduleAt(5, func() { order = append(order, 0) })
	e.Run(100)
	if len(order) != 4 || order[0] != 0 || order[1] != 1 || order[2] != 2 || order[3] != 3 {
		t.Errorf("order = %v", order)
	}
	past := NewEngine()
	_ = past.ScheduleAt(10, func() {
		if err := past.ScheduleAt(5, func() {}); err != ErrPast {
			t.Errorf("past ScheduleAt err = %v", err)
		}
	})
	past.Run(20)
}

// TestFreeListRecycling drives a self-rescheduling event train and
// checks the engine reuses event structs instead of growing the heap
// or leaking: steady state keeps exactly one pending event.
func TestFreeListRecycling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if e.Now() < 1000 {
			_ = e.After(1, 0, tick)
		}
	}
	_ = e.ScheduleAt(0, tick)
	e.Run(2000)
	if count != 1001 {
		t.Fatalf("ticks = %d", count)
	}
	if len(e.free) == 0 {
		t.Error("free list empty after run: events are not recycled")
	}
	if len(e.free) > 2 {
		t.Errorf("free list grew to %d for a single event train", len(e.free))
	}
}

// TestHeapOrderRandomized pushes events with colliding times and
// phases in a scrambled order and verifies the hand-rolled heap drains
// them in (time, phase, seq) order.
func TestHeapOrderRandomized(t *testing.T) {
	e := NewEngine()
	type key struct {
		at    Time
		phase Phase
		seq   int
	}
	var got []key
	seqAt := map[[2]int64]int{}
	for i := 0; i < 500; i++ {
		at := Time((i * 7919) % 23)
		ph := Phase((i * 104729) % 3)
		k := [2]int64{int64(at), int64(ph)}
		seq := seqAt[k]
		seqAt[k]++
		_ = e.Schedule(at, ph, func() { got = append(got, key{at, ph, seq}) })
	}
	e.Run(100)
	if len(got) != 500 {
		t.Fatalf("ran %d events", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.at > b.at || (a.at == b.at && a.phase > b.phase) ||
			(a.at == b.at && a.phase == b.phase && a.seq >= b.seq) {
			t.Fatalf("order violated at %d: %+v then %+v", i, a, b)
		}
	}
}

// BenchmarkEngineSteadyState measures the schedule/run cycle once the
// free list is primed: scheduling from inside events must be
// allocation-free.
func BenchmarkEngineSteadyState(b *testing.B) {
	e := NewEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		_ = e.After(1, 0, tick)
	}
	_ = e.ScheduleAt(0, tick)
	e.Run(64) // prime the free list
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(e.Now() + 1)
	}
	if n == 0 {
		b.Fatal("no events ran")
	}
}

// BenchmarkEngineChurn measures a deeper queue: 64 interleaved event
// trains with staggered periods.
func BenchmarkEngineChurn(b *testing.B) {
	e := NewEngine()
	for i := 0; i < 64; i++ {
		period := Time(1 + i%7)
		var tick func()
		tick = func() { _ = e.After(period, Phase(i%3), tick) }
		_ = e.Schedule(Time(i), Phase(i%3), tick)
	}
	e.Run(100) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(e.Now() + 10)
	}
}
