package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
)

// File magics. Eight bytes each so torn-header detection is a single
// length check.
var (
	walMagic  = []byte("E2EWALv1")
	snapMagic = []byte("E2ESNPv1")
)

// ShardLog is one shard's durability state: an append-only WAL plus
// an atomically-replaced snapshot file. It is owned by exactly one
// shard worker (the one-writer idiom the serve package already uses
// everywhere) and is not safe for concurrent use.
type ShardLog struct {
	walPath  string
	snapPath string
	opts     Options

	f     *os.File
	size  int64 // current WAL length in bytes
	buf   []byte
	frame []byte

	unsynced int  // appends since last fsync (FsyncBatch bookkeeping)
	closed   bool

	// failAfter is the test-only crash hook: when ≥ 0, any write that
	// would push the WAL past failAfter bytes writes only the prefix up
	// to it and kills the log with ErrCrashed — a deterministic
	// mid-append torn record, exactly what kill -9 leaves behind.
	failAfter int64
	dead      bool

	// Recovery output, parsed at open and consumed once via Recovered.
	recSnap    *Snapshot
	recBatches []BatchRecord
}

func shardFile(dir string, shard int, ext string) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.%s", shard, ext))
}

// openShardLog loads shard i's snapshot, scans its WAL (truncating
// any torn tail in place), validates epoch contiguity of the tail
// batches, and leaves the file positioned for appends.
func openShardLog(dir string, shard int, opts Options) (*ShardLog, error) {
	sl := &ShardLog{
		walPath:   shardFile(dir, shard, "wal"),
		snapPath:  shardFile(dir, shard, "snap"),
		opts:      opts,
		failAfter: -1,
	}

	// Snapshot: absent is fine; present must decode exactly. A torn
	// snapshot cannot occur (temp + rename), so damage here is real
	// corruption, not crash debris.
	if data, err := os.ReadFile(sl.snapPath); err == nil {
		if len(data) < len(snapMagic) || !bytes.Equal(data[:len(snapMagic)], snapMagic) {
			return nil, fmt.Errorf("%w: %s: bad snapshot magic", ErrCorrupt, sl.snapPath)
		}
		payloads, valid := scanFrames(data[len(snapMagic):])
		if len(payloads) != 1 || len(snapMagic)+valid != len(data) {
			return nil, fmt.Errorf("%w: %s: malformed snapshot framing", ErrCorrupt, sl.snapPath)
		}
		snap, err := decodeSnapshot(payloads[0])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sl.snapPath, err)
		}
		sl.recSnap = snap
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	f, err := os.OpenFile(sl.walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	sl.f = f
	data, err := os.ReadFile(sl.walPath)
	if err != nil {
		f.Close()
		return nil, err
	}
	if len(data) < len(walMagic) {
		// New or torn-before-the-magic WAL: rewrite the header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.WriteAt(walMagic, 0); err != nil {
			f.Close()
			return nil, err
		}
		sl.size = int64(len(walMagic))
		return sl, nil
	}
	if !bytes.Equal(data[:len(walMagic)], walMagic) {
		f.Close()
		return nil, fmt.Errorf("%w: %s: bad WAL magic", ErrCorrupt, sl.walPath)
	}
	payloads, valid := scanFrames(data[len(walMagic):])
	sl.size = int64(len(walMagic) + valid)
	if sl.size < int64(len(data)) {
		// Torn tail from a crash mid-append: truncate to the last
		// complete record.
		if err := f.Truncate(sl.size); err != nil {
			f.Close()
			return nil, err
		}
	}
	var prev uint64
	if sl.recSnap != nil {
		prev = sl.recSnap.Epoch
	}
	for _, p := range payloads {
		rec, err := decodeBatch(p)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", sl.walPath, err)
		}
		if rec.Epoch <= prev && sl.recSnap != nil && rec.Epoch <= sl.recSnap.Epoch {
			// Batch predates the snapshot: the crash hit between the
			// snapshot rename and the WAL compaction. Skip it.
			continue
		}
		if rec.Epoch != prev+1 {
			f.Close()
			return nil, fmt.Errorf("%w: %s: epoch %d follows %d", ErrCorrupt, sl.walPath, rec.Epoch, prev)
		}
		prev = rec.Epoch
		sl.recBatches = append(sl.recBatches, rec)
	}
	return sl, nil
}

// Recovered hands over the state parsed at open — the snapshot (nil
// if none) and the WAL tail batches with epochs above it, in commit
// order — and releases the parse buffers. Second call returns empty.
func (sl *ShardLog) Recovered() (*Snapshot, []BatchRecord) {
	snap, batches := sl.recSnap, sl.recBatches
	sl.recSnap, sl.recBatches = nil, nil
	return snap, batches
}

// Size returns the WAL's current byte length (header included).
func (sl *ShardLog) Size() int64 { return sl.size }

// FailAfter arms the crash hook: once the WAL would grow past n
// bytes, the write is cut at n and the log dies with ErrCrashed. Test
// use only — it simulates kill -9 landing mid-append.
func (sl *ShardLog) FailAfter(n int64) { sl.failAfter = n }

// write appends raw bytes honoring the crash hook.
func (sl *ShardLog) write(b []byte) error {
	if sl.dead {
		return ErrCrashed
	}
	if sl.closed {
		return ErrClosed
	}
	if sl.failAfter >= 0 && sl.size+int64(len(b)) > sl.failAfter {
		keep := sl.failAfter - sl.size
		if keep > 0 {
			if _, err := sl.f.WriteAt(b[:keep], sl.size); err != nil {
				return err
			}
			sl.size += keep
		}
		sl.dead = true
		return ErrCrashed
	}
	if _, err := sl.f.WriteAt(b, sl.size); err != nil {
		return err
	}
	sl.size += int64(len(b))
	return nil
}

// AppendBatch appends one batch record and applies the fsync policy.
// The append is all-or-nothing from the caller's perspective: an
// error means the batch must be treated as uncommitted (and on a real
// crash, the torn bytes are truncated away at next open).
func (sl *ShardLog) AppendBatch(rec *BatchRecord) error {
	sl.buf = appendBatchPayload(sl.buf[:0], rec)
	sl.frame = appendFrame(sl.frame[:0], sl.buf)
	if err := sl.write(sl.frame); err != nil {
		return err
	}
	switch sl.opts.Policy {
	case FsyncAlways:
		return sl.f.Sync()
	case FsyncBatch:
		sl.unsynced++
		if sl.unsynced >= batchSyncEvery {
			sl.unsynced = 0
			return sl.f.Sync()
		}
	}
	return nil
}

// WriteSnapshot atomically replaces the shard's snapshot and compacts
// the WAL. Order matters: the snapshot must be durably renamed before
// the WAL shrinks, and replay tolerates the in-between state by
// skipping batches at or below the snapshot epoch.
func (sl *ShardLog) WriteSnapshot(snap *Snapshot) error {
	if sl.closed {
		return ErrClosed
	}
	if sl.dead {
		return ErrCrashed
	}
	sl.buf = appendSnapshotPayload(sl.buf[:0], snap)
	data := append(make([]byte, 0, len(snapMagic)+frameHeaderLen+len(sl.buf)), snapMagic...)
	data = appendFrame(data, sl.buf)
	if err := atomicWrite(sl.snapPath, data, sl.opts.Policy != FsyncNever); err != nil {
		return err
	}
	return sl.compact()
}

// compact truncates the WAL back to its header; every batch the WAL
// held is covered by the snapshot that just landed.
func (sl *ShardLog) compact() error {
	if err := sl.f.Truncate(int64(len(walMagic))); err != nil {
		return err
	}
	sl.size = int64(len(walMagic))
	sl.unsynced = 0
	if sl.opts.Policy != FsyncNever {
		return sl.f.Sync()
	}
	return nil
}

// Sync forces buffered appends to stable storage regardless of
// policy.
func (sl *ShardLog) Sync() error {
	if sl.closed || sl.dead {
		return nil
	}
	sl.unsynced = 0
	return sl.f.Sync()
}

// Close syncs (per policy) and closes the WAL file. Idempotent.
func (sl *ShardLog) Close() error {
	if sl.closed {
		return nil
	}
	sl.closed = true
	if !sl.dead && sl.opts.Policy != FsyncNever {
		sl.f.Sync()
	}
	return sl.f.Close()
}
