package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"e2efair/internal/flow"
	"e2efair/internal/topology"
)

// On-disk framing: every record is [u32 payloadLen][u32 CRC-32C of
// payload][payload]. The payload's first byte is its record kind. A
// record whose frame is short, whose length is implausible, or whose
// CRC does not match terminates the scan: everything before it is the
// recovered log, everything from it on is a torn tail to truncate.
const (
	frameHeaderLen = 8
	// maxRecordBytes bounds a single payload. A batch of MaxBatch=64
	// register events over long paths is a few KiB; the cap exists so a
	// corrupt length field can never drive a giant allocation.
	maxRecordBytes = 1 << 26

	recKindBatch    = 1
	recKindSnapshot = 2

	// maxCount bounds decoded element counts (events, path hops, id
	// bytes, counters) for the same reason as maxRecordBytes.
	maxCount = 1 << 20
)

// castagnoli is the CRC-32C table used for every frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EventKind distinguishes the two flow-registry mutations.
type EventKind uint8

const (
	// EventRegister is a flow registration; the Event carries the spec.
	EventRegister EventKind = 1
	// EventRemove is a flow removal; the Event carries only the ID.
	EventRemove EventKind = 2
)

// Verdict is the admission outcome recorded with each event. Only
// accepted events mutate state on replay; rejected ones are retained
// for audit and counter continuity.
type Verdict uint8

const (
	// Accepted means the event mutated the live flow set.
	Accepted Verdict = 0
	// Rejected means admission (duplicate, flow cap, min-share floor,
	// unknown remove) refused the event; it changed nothing.
	Rejected Verdict = 1
)

// Event is one admission-ordered flow event as logged. Register events
// carry the full spec so replay can rebuild the flow byte-for-byte;
// remove events carry only the ID.
type Event struct {
	Kind    EventKind
	Verdict Verdict
	ID      flow.ID
	Weight  float64           // register only
	Path    []topology.NodeID // register only
}

// BatchRecord is one committed batch: the shard epoch the batch
// produced and its events in application order. Epochs in a WAL are
// strictly increasing by one across changed batches, which is what
// lets recovery detect mid-log corruption (torn tails are handled by
// the frame scan; an epoch gap can only mean a damaged middle).
type BatchRecord struct {
	Epoch  uint64
	Events []Event
}

// FlowState is one live flow inside a Snapshot, in shard registration
// order.
type FlowState struct {
	ID     flow.ID
	Weight float64
	Path   []topology.NodeID
}

// Snapshot is a shard's committed state at an epoch: the live flows in
// registration order plus the serving counters. Shares are not stored
// — the allocation is a pure function of the ordered flow set, so
// recovery re-prices once and lands on bit-identical shares.
type Snapshot struct {
	Epoch    uint64
	Counters []uint64 // opaque to durable; packed/unpacked by the caller
	Flows    []FlowState
}

// --- encoding -------------------------------------------------------

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendPath(b []byte, path []topology.NodeID) []byte {
	b = appendU32(b, uint32(len(path)))
	for _, n := range path {
		b = appendU32(b, uint32(n))
	}
	return b
}

// appendFrame appends [len][crc][payload] to buf.
func appendFrame(buf, payload []byte) []byte {
	buf = appendU32(buf, uint32(len(payload)))
	buf = appendU32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// appendBatchPayload encodes rec (without framing) onto buf.
func appendBatchPayload(buf []byte, rec *BatchRecord) []byte {
	buf = append(buf, recKindBatch)
	buf = appendU64(buf, rec.Epoch)
	buf = appendU32(buf, uint32(len(rec.Events)))
	for i := range rec.Events {
		ev := &rec.Events[i]
		buf = append(buf, byte(ev.Kind), byte(ev.Verdict))
		buf = appendStr(buf, string(ev.ID))
		if ev.Kind == EventRegister {
			buf = appendU64(buf, floatBits(ev.Weight))
			buf = appendPath(buf, ev.Path)
		}
	}
	return buf
}

// appendSnapshotPayload encodes snap (without framing) onto buf.
func appendSnapshotPayload(buf []byte, snap *Snapshot) []byte {
	buf = append(buf, recKindSnapshot)
	buf = appendU64(buf, snap.Epoch)
	buf = appendU32(buf, uint32(len(snap.Counters)))
	for _, c := range snap.Counters {
		buf = appendU64(buf, c)
	}
	buf = appendU32(buf, uint32(len(snap.Flows)))
	for i := range snap.Flows {
		f := &snap.Flows[i]
		buf = appendStr(buf, string(f.ID))
		buf = appendU64(buf, floatBits(f.Weight))
		buf = appendPath(buf, f.Path)
	}
	return buf
}

// --- decoding -------------------------------------------------------

// cursor is a bounds-checked little-endian reader over one payload.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: truncated %s at offset %d", ErrCorrupt, what, c.off)
	}
}

func (c *cursor) u8(what string) uint8 {
	if c.err != nil {
		return 0
	}
	if c.off+1 > len(c.b) {
		c.fail(what)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u32(what string) uint32 {
	if c.err != nil {
		return 0
	}
	if c.off+4 > len(c.b) {
		c.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64(what string) uint64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.b) {
		c.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) count(what string) int {
	n := c.u32(what)
	if c.err == nil && n > maxCount {
		c.err = fmt.Errorf("%w: %s count %d exceeds limit", ErrCorrupt, what, n)
	}
	return int(n)
}

func (c *cursor) str(what string) string {
	n := c.count(what + " length")
	if c.err != nil {
		return ""
	}
	if c.off+n > len(c.b) {
		c.fail(what)
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += n
	return s
}

func (c *cursor) path() []topology.NodeID {
	n := c.count("path")
	if c.err != nil || n == 0 {
		return nil
	}
	if c.off+4*n > len(c.b) {
		c.fail("path")
		return nil
	}
	out := make([]topology.NodeID, n)
	for i := range out {
		out[i] = topology.NodeID(c.u32("path node"))
	}
	return out
}

// done enforces that decoding consumed the payload exactly; together
// with enum validation this makes encode∘decode the identity on valid
// payloads (the round-trip property the fuzzer pins).
func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(c.b)-c.off)
	}
	return nil
}

// decodeBatch parses one batch payload (including its kind byte).
func decodeBatch(p []byte) (BatchRecord, error) {
	c := &cursor{b: p}
	var rec BatchRecord
	if k := c.u8("record kind"); c.err == nil && k != recKindBatch {
		return rec, fmt.Errorf("%w: record kind %d, want batch", ErrCorrupt, k)
	}
	rec.Epoch = c.u64("epoch")
	n := c.count("events")
	if c.err != nil {
		return rec, c.err
	}
	rec.Events = make([]Event, 0, min(n, 4096))
	for i := 0; i < n && c.err == nil; i++ {
		var ev Event
		ev.Kind = EventKind(c.u8("event kind"))
		ev.Verdict = Verdict(c.u8("verdict"))
		if c.err == nil && ev.Kind != EventRegister && ev.Kind != EventRemove {
			return rec, fmt.Errorf("%w: event kind %d", ErrCorrupt, ev.Kind)
		}
		if c.err == nil && ev.Verdict != Accepted && ev.Verdict != Rejected {
			return rec, fmt.Errorf("%w: verdict %d", ErrCorrupt, ev.Verdict)
		}
		ev.ID = flow.ID(c.str("event id"))
		if ev.Kind == EventRegister {
			ev.Weight = floatFromBits(c.u64("weight"))
			ev.Path = c.path()
		}
		rec.Events = append(rec.Events, ev)
	}
	if err := c.done(); err != nil {
		return rec, err
	}
	return rec, nil
}

// decodeSnapshot parses one snapshot payload (including its kind byte).
func decodeSnapshot(p []byte) (*Snapshot, error) {
	c := &cursor{b: p}
	if k := c.u8("record kind"); c.err == nil && k != recKindSnapshot {
		return nil, fmt.Errorf("%w: record kind %d, want snapshot", ErrCorrupt, k)
	}
	snap := &Snapshot{Epoch: c.u64("epoch")}
	nc := c.count("counters")
	for i := 0; i < nc && c.err == nil; i++ {
		snap.Counters = append(snap.Counters, c.u64("counter"))
	}
	nf := c.count("flows")
	if c.err != nil {
		return nil, c.err
	}
	snap.Flows = make([]FlowState, 0, min(nf, 4096))
	for i := 0; i < nf && c.err == nil; i++ {
		var f FlowState
		f.ID = flow.ID(c.str("flow id"))
		f.Weight = floatFromBits(c.u64("weight"))
		f.Path = c.path()
		snap.Flows = append(snap.Flows, f)
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return snap, nil
}

// scanFrames walks data and returns every complete, CRC-valid payload
// plus the byte length of the valid prefix. The scan stops (without
// error) at the first frame that is short, oversized, or checksum-
// mismatched: by construction that can only be a torn tail, and the
// caller truncates the file to the returned length.
func scanFrames(data []byte) (payloads [][]byte, valid int) {
	off := 0
	for {
		if off+frameHeaderLen > len(data) {
			return payloads, off
		}
		n := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecordBytes || off+frameHeaderLen+int(n) > len(data) {
			return payloads, off
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return payloads, off
		}
		payloads = append(payloads, payload)
		off += frameHeaderLen + int(n)
	}
}
