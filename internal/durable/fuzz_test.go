package durable

import (
	"bytes"
	"testing"

	"e2efair/internal/topology"
)

// FuzzWALDecode is the CI-fuzzed decoder hardening target: arbitrary
// bytes fed to the frame scanner and batch decoder must never panic
// (no out-of-bounds reads, no giant count-driven allocations), and
// every payload that decodes cleanly must re-encode to exactly the
// bytes it came from (the canonical-encoding round-trip recovery
// relies on).
func FuzzWALDecode(f *testing.F) {
	// Seed corpus: real encodings plus adversarial shapes.
	seed := func(rec BatchRecord) {
		payload := appendBatchPayload(nil, &rec)
		f.Add(appendFrame(nil, payload))
	}
	seed(BatchRecord{Epoch: 1, Events: []Event{
		{Kind: EventRegister, ID: "f1", Weight: 1.5, Path: []topology.NodeID{0, 1, 2}},
	}})
	seed(BatchRecord{Epoch: 2, Events: []Event{
		{Kind: EventRemove, ID: "f1"},
		{Kind: EventRegister, Verdict: Rejected, ID: "dup", Weight: 2, Path: []topology.NodeID{3, 4}},
	}})
	seed(BatchRecord{Epoch: 3})
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})            // huge length
	f.Add(append(appendU32(appendU32(nil, 1), 0), recKindBatch)) // bad CRC
	snap := appendSnapshotPayload(nil, &Snapshot{Epoch: 9, Counters: []uint64{1},
		Flows: []FlowState{{ID: "x", Weight: 1, Path: []topology.NodeID{0, 1}}}})
	f.Add(appendFrame(nil, snap))

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, valid := scanFrames(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("scan consumed %d of %d bytes", valid, len(data))
		}
		reencoded := make([]byte, 0, valid)
		for _, p := range payloads {
			if rec, err := decodeBatch(p); err == nil {
				if got := appendBatchPayload(nil, &rec); !bytes.Equal(got, p) {
					t.Fatalf("batch round-trip diverged:\n in %x\nout %x", p, got)
				}
			}
			if snap, err := decodeSnapshot(p); err == nil {
				if got := appendSnapshotPayload(nil, snap); !bytes.Equal(got, p) {
					t.Fatalf("snapshot round-trip diverged:\n in %x\nout %x", p, got)
				}
			}
			reencoded = appendFrame(reencoded, p)
		}
		// Re-framing the scanned payloads reproduces the valid prefix.
		if !bytes.Equal(reencoded, data[:valid]) {
			t.Fatalf("frame round-trip diverged on %d-byte prefix", valid)
		}
	})
}
