// Package durable is the persistence layer under the serving engine:
// a per-shard write-ahead log of admission-ordered flow events plus
// periodic snapshots of the committed flow state, from which a
// crashed engine recovers byte-identical shares.
//
// The design leans on the same purity argument every other layer of
// this repo uses: the allocation is a pure function of the ordered
// live flow set, so durability only has to reconstruct that set (and
// its epoch) — never the shares themselves. A shard's state is
// therefore
//
//	state = replay(snapshot.Flows, WAL batches with epoch > snapshot.Epoch)
//
// and one re-price of the recovered set lands on exactly the bytes
// the uninterrupted engine had published (pinned by the 100-seed
// crash-point property test in internal/serve).
//
// Commit protocol (enforced by internal/serve): a shard worker
// applies a batch in memory, prices it, appends the batch record to
// the WAL (fsync per policy), and only then publishes the new share
// snapshot and acks the clients. A crash before the append loses only
// unacked events; a crash after it replays the batch on recovery —
// both are states a client that never got an ack must tolerate, so
// every acked event survives and no acked state is ever invented.
//
// File format: each file opens with an 8-byte magic; records are
// CRC-32C framed ([u32 len][u32 crc][payload]). On open the WAL is
// scanned and the first short/oversized/mismatched frame marks a torn
// tail, which is truncated in place. Snapshots are written to a temp
// file and atomically renamed, so a crash mid-snapshot leaves the
// previous snapshot intact; the WAL is compacted (truncated to its
// header) only after the rename lands, and replay skips any batch at
// or below the snapshot epoch, so a crash between rename and compact
// is also safe.
package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

var (
	// ErrCorrupt marks unrecoverable damage: a bad magic, an epoch gap
	// mid-log, or an undecodable record *before* the torn tail. Torn
	// tails themselves are expected crash debris and are truncated
	// silently, never reported as ErrCorrupt.
	ErrCorrupt = errors.New("durable: corrupt record")
	// ErrCrashed is returned by appends after the test-only crash hook
	// (FailAfter) has fired; the log is dead and the "process" is
	// considered killed mid-write.
	ErrCrashed = errors.New("durable: simulated crash")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("durable: log closed")
	// ErrMismatch is returned by Attach when the data directory was
	// written for a different topology or shard count.
	ErrMismatch = errors.New("durable: data dir does not match this topology")
)

// FsyncPolicy selects how eagerly WAL appends reach stable storage.
type FsyncPolicy uint8

const (
	// FsyncBatch (the default) group-commits: the file is fsynced every
	// batchSyncEvery appends and on snapshot/close. A process crash
	// loses nothing (the page cache survives); an OS/power crash can
	// lose up to the group window of acked batches.
	FsyncBatch FsyncPolicy = iota
	// FsyncAlways fsyncs after every appended batch: an ack implies the
	// batch is on stable storage even across an OS crash. Slowest.
	FsyncAlways
	// FsyncNever never fsyncs: durability against process crashes only.
	FsyncNever
)

// batchSyncEvery is the FsyncBatch group-commit window in appends.
const batchSyncEvery = 16

// ParseFsyncPolicy parses "always", "batch" or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch", "":
		return FsyncBatch, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, batch or never)", s)
}

// String renders the policy as its flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "batch"
	}
}

// Options configures a Store.
type Options struct {
	// Policy is the WAL fsync policy; zero value is FsyncBatch.
	Policy FsyncPolicy
	// SnapshotEvery is how many accepted events a shard commits between
	// automatic snapshots (each snapshot compacts the shard's WAL).
	// 0 disables automatic snapshots: the WAL grows until a clean close
	// writes the final snapshot.
	SnapshotEvery int
}

// storeMeta is the data directory's identity file: recovery refuses a
// directory written for a different topology or sharding.
type storeMeta struct {
	Version         int    `json:"version"`
	Shards          int    `json:"shards"`
	TopoFingerprint uint64 `json:"topoFingerprint"`
}

const metaName = "meta.json"

// Store manages one data directory holding a meta file plus one WAL
// and one snapshot file per engine shard. Open it once, hand it to
// serve.Config.Durable, and the engine attaches (validating topology
// identity), recovers and appends through it.
type Store struct {
	dir      string
	opts     Options
	attached bool
}

// Open prepares a data directory (creating it if needed). It does not
// touch shard files — that happens in Attach, once the shard count
// and topology fingerprint are known.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("durable: empty data dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	return &Store{dir: dir, opts: opts}, nil
}

// Dir returns the store's data directory.
func (st *Store) Dir() string { return st.dir }

// SnapshotEvery returns the configured automatic-snapshot cadence.
func (st *Store) SnapshotEvery() int { return st.opts.SnapshotEvery }

// Attach opens (or creates) the per-shard logs for an engine with the
// given shard count over the topology identified by fingerprint. An
// existing directory must match both exactly — a WAL replayed into a
// different topology would silently mis-route flows. Each returned
// ShardLog has already scanned its WAL, truncated any torn tail, and
// holds the recovered snapshot + tail batches for the engine to
// consume via Recovered. A store can be attached by one engine at a
// time; close every ShardLog (the engine's Close does) before
// reattaching.
func (st *Store) Attach(shards int, fingerprint uint64) ([]*ShardLog, error) {
	if st.attached {
		return nil, fmt.Errorf("durable: store %s already attached", st.dir)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("durable: attach with %d shards", shards)
	}
	metaPath := filepath.Join(st.dir, metaName)
	want := storeMeta{Version: 1, Shards: shards, TopoFingerprint: fingerprint}
	if data, err := os.ReadFile(metaPath); err == nil {
		var got storeMeta
		if err := json.Unmarshal(data, &got); err != nil {
			return nil, fmt.Errorf("%w: unreadable %s: %v", ErrCorrupt, metaPath, err)
		}
		if got != want {
			return nil, fmt.Errorf("%w: %s has shards=%d fp=%#x, engine needs shards=%d fp=%#x",
				ErrMismatch, metaPath, got.Shards, got.TopoFingerprint, shards, fingerprint)
		}
	} else if os.IsNotExist(err) {
		data, err := json.Marshal(want)
		if err != nil {
			return nil, err
		}
		if err := atomicWrite(metaPath, data, st.opts.Policy != FsyncNever); err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	logs := make([]*ShardLog, shards)
	for i := range logs {
		sl, err := openShardLog(st.dir, i, st.opts)
		if err != nil {
			for _, open := range logs[:i] {
				open.Close()
			}
			return nil, err
		}
		logs[i] = sl
	}
	st.attached = true
	return logs, nil
}

// Detach marks the store reattachable after its shard logs are
// closed; the engine calls it from Close.
func (st *Store) Detach() { st.attached = false }

// atomicWrite writes data to path via a temp file + rename, fsyncing
// the file (and its directory) when sync is set.
func atomicWrite(path string, data []byte, sync bool) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if sync {
		if d, err := os.Open(filepath.Dir(path)); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
