package durable

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"e2efair/internal/flow"
	"e2efair/internal/topology"
)

func testStore(t *testing.T, opts Options) *Store {
	t.Helper()
	st, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func attachOne(t *testing.T, st *Store) *ShardLog {
	t.Helper()
	logs, err := st.Attach(1, 0xfeedface)
	if err != nil {
		t.Fatal(err)
	}
	return logs[0]
}

func reopenOne(t *testing.T, st *Store) *ShardLog {
	t.Helper()
	st.Detach()
	return attachOne(t, st)
}

func batch(epoch uint64, evs ...Event) BatchRecord {
	return BatchRecord{Epoch: epoch, Events: evs}
}

func reg(id string, w float64, path ...topology.NodeID) Event {
	return Event{Kind: EventRegister, ID: flow.ID(id), Weight: w, Path: path}
}

func rem(id string) Event {
	return Event{Kind: EventRemove, ID: flow.ID(id)}
}

// TestAppendRecoverRoundTrip pins that appended batches come back
// verbatim — kinds, verdicts, IDs, bit-exact weights, paths, epochs.
func TestAppendRecoverRoundTrip(t *testing.T) {
	st := testStore(t, Options{})
	sl := attachOne(t, st)
	if snap, recs := sl.Recovered(); snap != nil || len(recs) != 0 {
		t.Fatalf("fresh log recovered %v, %v", snap, recs)
	}
	want := []BatchRecord{
		batch(1, reg("f1", 1.25, 0, 1, 2)),
		batch(2, reg("f2", math.Nextafter(1, 2), 3, 4), Event{Kind: EventRegister, Verdict: Rejected, ID: "f1", Weight: 2, Path: []topology.NodeID{0, 1}}),
		batch(3, rem("f1"), Event{Kind: EventRemove, Verdict: Rejected, ID: "ghost"}),
	}
	for i := range want {
		if err := sl.AppendBatch(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}

	sl2 := reopenOne(t, st)
	defer sl2.Close()
	snap, got := sl2.Recovered()
	if snap != nil {
		t.Fatalf("unexpected snapshot %+v", snap)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %+v\nwant %+v", got, want)
	}
}

// TestTornTailTruncation is the byte-level crash sweep: a WAL holding
// several records is cut at EVERY possible length; reopening must
// always recover exactly the complete-record prefix and truncate the
// file back to a record boundary.
func TestTornTailTruncation(t *testing.T) {
	st := testStore(t, Options{Policy: FsyncNever})
	sl := attachOne(t, st)
	recs := []BatchRecord{
		batch(1, reg("a", 1, 0, 1)),
		batch(2, reg("b", 2, 1, 2), rem("a")),
		batch(3, reg("c", 3.5, 2, 3, 4, 5)),
	}
	var boundaries []int64 // WAL length after each append
	boundaries = append(boundaries, sl.Size())
	for i := range recs {
		if err := sl.AppendBatch(&recs[i]); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, sl.Size())
	}
	sl.Close()
	walPath := sl.walPath
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	completeBelow := func(cut int64) int {
		n := 0
		for _, b := range boundaries[1:] {
			if b <= cut {
				n++
			}
		}
		return n
	}
	for cut := int64(len(full)); cut >= 0; cut-- {
		if err := os.WriteFile(walPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		sl2 := reopenOne(t, st)
		_, got := sl2.Recovered()
		wantN := completeBelow(cut)
		if len(got) != wantN {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), wantN)
		}
		if wantN > 0 && !reflect.DeepEqual(got, recs[:wantN]) {
			t.Fatalf("cut %d: records diverged", cut)
		}
		wantSize := boundaries[wantN]
		if cut < int64(len(walMagic)) {
			wantSize = int64(len(walMagic)) // header rewritten
		}
		if sl2.Size() != wantSize {
			t.Fatalf("cut %d: truncated to %d, want boundary %d", cut, sl2.Size(), wantSize)
		}
		if fi, err := os.Stat(walPath); err != nil || fi.Size() != wantSize {
			t.Fatalf("cut %d: on-disk size %v/%v, want %d", cut, fi, err, wantSize)
		}
		sl2.Close()
	}
}

// TestCorruptMiddleTruncates pins how mid-log damage is handled: the
// CRC scan stops at the first bad frame and truncates there, exactly
// like a torn tail — at the byte level the two are indistinguishable
// (a sequential single writer can only tear at the end, so anything
// after a bad frame is unreachable either way). What recovery never
// does is serve records from BEYOND the damage, which is what the
// epoch-contiguity check backstops.
func TestCorruptMiddleTruncates(t *testing.T) {
	st := testStore(t, Options{Policy: FsyncNever})
	sl := attachOne(t, st)
	for e := uint64(1); e <= 3; e++ {
		b := batch(e, reg("f", float64(e), 0, 1))
		if err := sl.AppendBatch(&b); err != nil {
			t.Fatal(err)
		}
	}
	sl.Close()
	data, err := os.ReadFile(sl.walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the first record (well past the header).
	data[int64(len(walMagic))+frameHeaderLen+3] ^= 0xFF
	if err := os.WriteFile(sl.walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st.Detach()
	// The CRC scan stops at record 1, treating records 2-3 as a "tail";
	// that is indistinguishable from a torn tail at the byte level, so
	// recovery yields zero records — never a gap.
	sl2 := attachOne(t, st)
	if _, got := sl2.Recovered(); len(got) != 0 {
		t.Fatalf("recovered %d records across a corrupt middle", len(got))
	}
	sl2.Close()
}

// TestSnapshotCompaction pins the snapshot handoff: WriteSnapshot
// replaces the snapshot atomically, compacts the WAL to its header,
// and recovery = snapshot + post-snapshot tail only.
func TestSnapshotCompaction(t *testing.T) {
	st := testStore(t, Options{})
	sl := attachOne(t, st)
	for e := uint64(1); e <= 4; e++ {
		b := batch(e, reg("pre", float64(e), 0, 1), rem("pre"))
		if err := sl.AppendBatch(&b); err != nil {
			t.Fatal(err)
		}
	}
	snap := &Snapshot{
		Epoch:    4,
		Counters: []uint64{7, 8, 9},
		Flows:    []FlowState{{ID: "live", Weight: 2.5, Path: []topology.NodeID{0, 1, 2}}},
	}
	if err := sl.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if sl.Size() != int64(len(walMagic)) {
		t.Fatalf("WAL not compacted: %d bytes", sl.Size())
	}
	tail := batch(5, reg("post", 1, 3, 4))
	if err := sl.AppendBatch(&tail); err != nil {
		t.Fatal(err)
	}
	sl.Close()

	sl2 := reopenOne(t, st)
	defer sl2.Close()
	gotSnap, gotTail := sl2.Recovered()
	if gotSnap == nil || !reflect.DeepEqual(gotSnap, snap) {
		t.Fatalf("snapshot round-trip failed: %+v", gotSnap)
	}
	if len(gotTail) != 1 || !reflect.DeepEqual(gotTail[0], tail) {
		t.Fatalf("tail round-trip failed: %+v", gotTail)
	}
}

// TestSnapshotRenameBeforeCompactCrash pins the in-between crash
// state: snapshot renamed but WAL not yet compacted. Replay must skip
// every batch at or below the snapshot epoch instead of double-
// applying it.
func TestSnapshotRenameBeforeCompactCrash(t *testing.T) {
	st := testStore(t, Options{Policy: FsyncNever})
	sl := attachOne(t, st)
	for e := uint64(1); e <= 3; e++ {
		b := batch(e, reg("f", 1, 0, 1), rem("f"))
		if err := sl.AppendBatch(&b); err != nil {
			t.Fatal(err)
		}
	}
	// Write the snapshot file directly, WITHOUT compacting — the state
	// a crash between rename and truncate leaves behind.
	snap := &Snapshot{Epoch: 2, Flows: []FlowState{{ID: "f", Weight: 1, Path: []topology.NodeID{0, 1}}}}
	payload := appendSnapshotPayload(nil, snap)
	data := appendFrame(append([]byte{}, snapMagic...), payload)
	if err := os.WriteFile(sl.snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sl.Close()

	sl2 := reopenOne(t, st)
	defer sl2.Close()
	gotSnap, tail := sl2.Recovered()
	if gotSnap == nil || gotSnap.Epoch != 2 {
		t.Fatalf("snapshot not loaded: %+v", gotSnap)
	}
	if len(tail) != 1 || tail[0].Epoch != 3 {
		t.Fatalf("want only epoch-3 tail batch, got %+v", tail)
	}
}

// TestFailAfterTornRecord pins the crash hook: an append cut mid-
// record reports ErrCrashed, poisons the log, and leaves a torn tail
// that the next open truncates away.
func TestFailAfterTornRecord(t *testing.T) {
	st := testStore(t, Options{Policy: FsyncNever})
	sl := attachOne(t, st)
	first := batch(1, reg("keep", 1, 0, 1))
	if err := sl.AppendBatch(&first); err != nil {
		t.Fatal(err)
	}
	sl.FailAfter(sl.Size() + 5) // cut inside the next record's frame
	torn := batch(2, reg("torn", 1, 1, 2))
	if err := sl.AppendBatch(&torn); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	third := batch(3, rem("keep"))
	if err := sl.AppendBatch(&third); !errors.Is(err, ErrCrashed) {
		t.Fatalf("dead log accepted an append: %v", err)
	}
	// The torn prefix really made it to disk: the file is longer than
	// the last complete record but shorter than a full append.
	if fi, err := os.Stat(sl.walPath); err != nil || fi.Size() != sl.Size() {
		t.Fatalf("on-disk %v/%v, tracked size %d", fi, err, sl.Size())
	}
	sl.Close()

	sl2 := reopenOne(t, st)
	defer sl2.Close()
	_, got := sl2.Recovered()
	if len(got) != 1 || !reflect.DeepEqual(got[0], first) {
		t.Fatalf("recovered %+v, want only the first record", got)
	}
}

// TestAttachMismatch pins the identity check: a data dir written for
// one topology/sharding refuses an engine with another.
func TestAttachMismatch(t *testing.T) {
	st := testStore(t, Options{})
	sl := attachOne(t, st)
	sl.Close()
	st.Detach()
	if _, err := st.Attach(2, 0xfeedface); !errors.Is(err, ErrMismatch) {
		t.Fatalf("shard-count mismatch: %v", err)
	}
	if _, err := st.Attach(1, 0xdead); !errors.Is(err, ErrMismatch) {
		t.Fatalf("fingerprint mismatch: %v", err)
	}
	logs, err := st.Attach(1, 0xfeedface)
	if err != nil {
		t.Fatal(err)
	}
	logs[0].Close()
}

// TestDoubleAttachRefused pins the single-attacher guard.
func TestDoubleAttachRefused(t *testing.T) {
	st := testStore(t, Options{})
	sl := attachOne(t, st)
	defer sl.Close()
	if _, err := st.Attach(1, 0xfeedface); err == nil {
		t.Fatal("second attach succeeded")
	}
}

// TestFsyncPolicies exercises each policy end to end (behavioral
// equivalence — real power-loss semantics are not testable in
// process) and pins the parser.
func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncBatch, FsyncNever} {
		st := testStore(t, Options{Policy: pol})
		sl := attachOne(t, st)
		for e := uint64(1); e <= uint64(batchSyncEvery)+3; e++ {
			b := batch(e, reg("f", 1, 0, 1), rem("f"))
			if err := sl.AppendBatch(&b); err != nil {
				t.Fatalf("%v: %v", pol, err)
			}
		}
		if err := sl.Sync(); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		sl.Close()
		sl2 := reopenOne(t, st)
		if _, got := sl2.Recovered(); len(got) != batchSyncEvery+3 {
			t.Fatalf("%v: recovered %d", pol, len(got))
		}
		sl2.Close()
	}
	for s, want := range map[string]FsyncPolicy{"always": FsyncAlways, "batch": FsyncBatch, "": FsyncBatch, "never": FsyncNever} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if FsyncAlways.String() != "always" || FsyncBatch.String() != "batch" || FsyncNever.String() != "never" {
		t.Fatal("policy String round-trip broken")
	}
}

// TestEpochGapRejected pins that a WAL whose tail epochs skip a value
// is refused outright (can only happen via external tampering — the
// CRC scan plus append ordering never produce it).
func TestEpochGapRejected(t *testing.T) {
	st := testStore(t, Options{Policy: FsyncNever})
	sl := attachOne(t, st)
	b1 := batch(1, reg("a", 1, 0, 1))
	b3 := batch(3, reg("b", 1, 1, 2)) // skips epoch 2
	if err := sl.AppendBatch(&b1); err != nil {
		t.Fatal(err)
	}
	if err := sl.AppendBatch(&b3); err != nil {
		t.Fatal(err)
	}
	sl.Close()
	st.Detach()
	if _, err := st.Attach(1, 0xfeedface); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("epoch gap accepted: %v", err)
	}
}

// TestRandomizedChurnRoundTrip is a seeded property test over random
// scripts: any sequence of batches with random specs and verdicts
// survives close/reopen verbatim, with and without a mid-script
// snapshot.
func TestRandomizedChurnRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		st := testStore(t, Options{Policy: FsyncNever})
		sl := attachOne(t, st)
		var want []BatchRecord
		var snap *Snapshot
		epoch := uint64(0)
		for b := 0; b < 1+rng.Intn(10); b++ {
			epoch++
			rec := BatchRecord{Epoch: epoch}
			for e := 0; e < 1+rng.Intn(4); e++ {
				if rng.Intn(2) == 0 {
					path := make([]topology.NodeID, 2+rng.Intn(4))
					for i := range path {
						path[i] = topology.NodeID(rng.Intn(100))
					}
					ev := reg(randID(rng), rng.Float64()*10, path...)
					if rng.Intn(5) == 0 {
						ev.Verdict = Rejected
					}
					rec.Events = append(rec.Events, ev)
				} else {
					ev := rem(randID(rng))
					if rng.Intn(5) == 0 {
						ev.Verdict = Rejected
					}
					rec.Events = append(rec.Events, ev)
				}
			}
			if err := sl.AppendBatch(&rec); err != nil {
				t.Fatal(err)
			}
			want = append(want, rec)
			if rng.Intn(4) == 0 {
				snap = &Snapshot{Epoch: epoch, Counters: []uint64{uint64(b)},
					Flows: []FlowState{{ID: flow.ID(randID(rng)), Weight: 1, Path: []topology.NodeID{0, 1}}}}
				if err := sl.WriteSnapshot(snap); err != nil {
					t.Fatal(err)
				}
				want = want[:0]
			}
		}
		sl.Close()
		sl2 := reopenOne(t, st)
		gotSnap, got := sl2.Recovered()
		if !reflect.DeepEqual(gotSnap, snap) {
			t.Fatalf("seed %d: snapshot mismatch", seed)
		}
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("seed %d: %d/%d batches survived", seed, len(got), len(want))
		}
		sl2.Close()
	}
}

func randID(rng *rand.Rand) string {
	const alpha = "abcdefgh"
	n := 1 + rng.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[rng.Intn(len(alpha))]
	}
	return string(b)
}

// TestOpenRejectsForeignFile pins that a file with the wrong magic is
// an error, not a silent wipe.
func TestOpenRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "shard-0000.wal"), []byte("NOTAWAL!"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Attach(1, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign WAL accepted: %v", err)
	}
}
