package transport_test

import (
	"errors"
	"testing"

	"e2efair/internal/netsim"
	"e2efair/internal/scenario"
	"e2efair/internal/sim"
	"e2efair/internal/transport"
)

func run(t *testing.T, p netsim.Protocol, dur sim.Time) *transport.Result {
	t.Helper()
	sc, err := scenario.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	res, err := transport.Run(sc.Inst, transport.Config{
		Net: netsim.Config{Protocol: p, Duration: dur, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBadWindow(t *testing.T) {
	sc, err := scenario.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	_, err = transport.Run(sc.Inst, transport.Config{
		Net:    netsim.Config{Protocol: netsim.Protocol2PAC, Duration: sim.Second},
		Window: -1,
	})
	if !errors.Is(err, transport.ErrBadWindow) {
		t.Errorf("err = %v", err)
	}
}

func TestReliableDelivery2PA(t *testing.T) {
	res := run(t, netsim.Protocol2PAC, 30*sim.Second)
	for id, fr := range res.PerFlow {
		if fr.Goodput == 0 {
			t.Errorf("flow %s: zero goodput", id)
		}
		if fr.Transmissions < fr.Goodput {
			t.Errorf("flow %s: %d transmissions < %d goodput", id, fr.Transmissions, fr.Goodput)
		}
	}
	if res.RetransmissionOverhead() > 0.05 {
		t.Errorf("2PA retransmission overhead %.3f should be tiny", res.RetransmissionOverhead())
	}
}

// TestRetransmissionOverheadOrdering is the transport-level version of
// the paper's waste argument: protocols that over-drive upstream hops
// burn sends on packets that die downstream.
func TestRetransmissionOverheadOrdering(t *testing.T) {
	r2pa := run(t, netsim.Protocol2PAC, 30*sim.Second)
	rtt := run(t, netsim.ProtocolTwoTier, 30*sim.Second)
	if !(r2pa.RetransmissionOverhead() < rtt.RetransmissionOverhead()) {
		t.Errorf("2PA overhead %.3f should be below two-tier %.3f",
			r2pa.RetransmissionOverhead(), rtt.RetransmissionOverhead())
	}
	if !(r2pa.TotalGoodput() > rtt.TotalGoodput()) {
		t.Errorf("2PA goodput %d should beat two-tier %d",
			r2pa.TotalGoodput(), rtt.TotalGoodput())
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	sc, err := scenario.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	res, err := transport.Run(sc.Inst, transport.Config{
		Net:    netsim.Config{Protocol: netsim.Protocol2PAC, Duration: 5 * sim.Second, Seed: 2},
		Window: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Window 1 caps throughput at one packet per round trip; far below
	// saturation but strictly positive.
	for id, fr := range res.PerFlow {
		if fr.Goodput == 0 {
			t.Errorf("flow %s: zero goodput at window 1", id)
		}
	}
	wide, err := transport.Run(sc.Inst, transport.Config{
		Net:    netsim.Config{Protocol: netsim.Protocol2PAC, Duration: 5 * sim.Second, Seed: 2},
		Window: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wide.TotalGoodput() <= res.TotalGoodput() {
		t.Errorf("window 32 goodput %d should exceed window 1 goodput %d",
			wide.TotalGoodput(), res.TotalGoodput())
	}
}

func TestDeterministic(t *testing.T) {
	a := run(t, netsim.Protocol2PAC, 5*sim.Second)
	b := run(t, netsim.Protocol2PAC, 5*sim.Second)
	if a.TotalGoodput() != b.TotalGoodput() {
		t.Error("transport runs not deterministic")
	}
}
