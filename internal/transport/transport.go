// Package transport adds an end-to-end reliable transport on top of
// the simulated network: a sliding-window ARQ with retransmission
// timers. The paper's end-to-end throughput argument assumes "an
// effective reliable transport protocol" — with one in place, every
// packet dropped downstream forces a retransmission that consumes
// upstream bandwidth again, so an allocation that over-drives upstream
// subflows (802.11, two-tier) pays twice, while 2PA's balanced hops
// retransmit almost nothing. Goodput (unique data delivered) makes the
// paper's "wasted bandwidth" concrete.
//
// Acknowledgements are modelled out of band (zero airtime): the paper
// does not allocate reverse-path bandwidth, and e2e ACKs are an order
// of magnitude smaller than data frames. Retransmitted data packets
// pay full price through the MAC.
package transport

import (
	"errors"

	"e2efair/internal/core"
	"e2efair/internal/flow"
	"e2efair/internal/mac"
	"e2efair/internal/netsim"
	"e2efair/internal/sim"
	"e2efair/internal/stats"
	"e2efair/internal/topology"
)

// ErrBadWindow is returned for non-positive window sizes.
var ErrBadWindow = errors.New("transport: window must be positive")

// Config parameterizes a reliable-transport run.
type Config struct {
	// Net is the underlying network/protocol configuration.
	Net netsim.Config
	// Window is the per-flow sliding window in packets (default 16).
	Window int
	// RTO is the retransmission timeout (default 500 ms).
	RTO sim.Time
	// MaxRetx bounds retransmissions per packet; beyond it the packet
	// is abandoned (default 10).
	MaxRetx int
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 16
	}
	if c.RTO == 0 {
		c.RTO = 500 * sim.Millisecond
	}
	if c.MaxRetx == 0 {
		c.MaxRetx = 10
	}
	return c
}

// FlowResult reports one flow's transport-level outcome.
type FlowResult struct {
	// Goodput is the number of distinct sequence numbers delivered.
	Goodput int64
	// Transmissions counts data-packet injections at the source,
	// including retransmissions.
	Transmissions int64
	// Retransmissions counts injections beyond the first per sequence
	// number.
	Retransmissions int64
	// Abandoned counts sequence numbers given up after MaxRetx.
	Abandoned int64
}

// Result reports a run.
type Result struct {
	Protocol netsim.Protocol
	Duration sim.Time
	PerFlow  map[flow.ID]*FlowResult
	// Stats is the underlying hop-level collector (loss ratios
	// comparable with the CBR experiments).
	Stats *stats.Collector
}

// TotalGoodput sums goodput over flows.
func (r *Result) TotalGoodput() int64 {
	var sum int64
	for _, fr := range r.PerFlow {
		sum += fr.Goodput
	}
	return sum
}

// RetransmissionOverhead returns retransmissions / transmissions, the
// fraction of source sends that were repeats.
func (r *Result) RetransmissionOverhead() float64 {
	var retx, tx int64
	for _, fr := range r.PerFlow {
		retx += fr.Retransmissions
		tx += fr.Transmissions
	}
	if tx == 0 {
		return 0
	}
	return float64(retx) / float64(tx)
}

// conn is per-flow ARQ state at the source.
type conn struct {
	f        *flow.Flow
	res      *FlowResult
	nextSeq  int64
	inflight map[int64]int  // seq → retransmission count
	acked    map[int64]bool // delivered sequence numbers (dedup)
	window   int
}

// runner holds one run's shared state.
type runner struct {
	cfg   Config
	net   netsim.Config
	stack *netsim.Stack
	col   *stats.Collector
	conns map[flow.ID]*conn
}

// Run drives every flow with a greedy reliable sender over the
// configured protocol stack.
func Run(inst *core.Instance, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Window <= 0 {
		return nil, ErrBadWindow
	}
	r := &runner{
		cfg:   cfg,
		col:   stats.NewCollector(),
		conns: make(map[flow.ID]*conn, inst.Flows.Len()),
	}
	hooks := mac.Hooks{
		OnDelivered: r.onDelivered,
		OnRetryDrop: func(p *mac.Packet, _ sim.Time) { r.col.RetryDrop(p.Hop >= 1) },
		OnCollision: func(_ topology.NodeID, _ sim.Time) { r.col.Collision() },
	}
	stack, err := netsim.NewStack(inst, cfg.Net, hooks)
	if err != nil {
		return nil, err
	}
	r.stack = stack
	r.net = stack.Config

	res := &Result{
		Protocol: r.net.Protocol,
		Duration: r.net.Duration,
		PerFlow:  make(map[flow.ID]*FlowResult, inst.Flows.Len()),
		Stats:    r.col,
	}
	for _, f := range inst.Flows.Flows() {
		c := &conn{
			f:        f,
			res:      &FlowResult{},
			inflight: make(map[int64]int),
			acked:    make(map[int64]bool),
			window:   cfg.Window,
		}
		r.conns[f.ID()] = c
		res.PerFlow[f.ID()] = c.res
		cc := c
		if err := stack.Engine.Schedule(0, 1, func() { r.sendWindow(cc) }); err != nil {
			return nil, err
		}
	}
	stack.Engine.Run(r.net.Duration)
	return res, nil
}

// onDelivered forwards packets hop by hop and treats final-hop arrival
// as an out-of-band cumulative ACK.
func (r *runner) onDelivered(p *mac.Packet, _ sim.Time) {
	r.col.HopDelivered(p.SubflowID(), p.LastHop())
	if !p.LastHop() {
		p.Hop++
		ok, err := r.stack.Medium.Inject(p)
		if err == nil && !ok {
			r.col.QueueDrop(true)
		}
		return
	}
	c := r.conns[p.Flow]
	if c == nil {
		return
	}
	if !c.acked[p.Seq] {
		c.acked[p.Seq] = true
		c.res.Goodput++
	}
	delete(c.inflight, p.Seq)
	r.sendWindow(c)
}

// sendWindow tops the connection up to its window.
func (r *runner) sendWindow(c *conn) {
	if r.stack.Engine.Now() >= r.net.Duration {
		return
	}
	for len(c.inflight) < c.window {
		seq := c.nextSeq
		c.nextSeq++
		r.inject(c, seq, 0)
	}
}

// inject sends (or resends) one sequence number and arms its RTO.
func (r *runner) inject(c *conn, seq int64, retx int) {
	p := &mac.Packet{
		Flow:         c.f.ID(),
		Seq:          seq,
		Path:         c.f.Path(),
		PayloadBytes: r.net.PayloadBytes,
		Born:         r.stack.Engine.Now(),
	}
	ok, err := r.stack.Medium.Inject(p)
	if err == nil && ok {
		c.res.Transmissions++
		if retx > 0 {
			c.res.Retransmissions++
		}
	} else if err == nil {
		// Source queue full; the RTO will try again.
		r.col.QueueDrop(false)
	}
	c.inflight[seq] = retx
	_ = r.stack.Engine.After(r.cfg.RTO, 1, func() { r.onTimeout(c, seq) })
}

// onTimeout retransmits an unacknowledged sequence number or abandons
// it past the retry budget.
func (r *runner) onTimeout(c *conn, seq int64) {
	retx, live := c.inflight[seq]
	if !live || c.acked[seq] {
		return
	}
	if retx+1 > r.cfg.MaxRetx {
		delete(c.inflight, seq)
		c.res.Abandoned++
		r.sendWindow(c)
		return
	}
	if r.stack.Engine.Now() >= r.net.Duration {
		return
	}
	r.inject(c, seq, retx+1)
}
