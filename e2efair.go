// Package e2efair implements end-to-end fair bandwidth allocation for
// multi-hop wireless ad hoc networks, reproducing Baochun Li,
// "End-to-End Fair Bandwidth Allocation in Multi-hop Wireless Ad Hoc
// Networks" (ICDCS 2005).
//
// The package computes channel shares for multi-hop flows that
// maximize total end-to-end throughput subject to basic fairness
// (every flow gets at least w_i·B/Σ w_j·v_j), via the paper's
// two-phase algorithm (2PA): a first phase that solves a linear
// program over the maximal cliques of the subflow contention graph —
// centrally or distributedly — and a second phase that realizes the
// shares with a distributed backoff-based packet scheduler. A
// packet-level wireless simulator (802.11-style DCF with RTS/CTS) and
// the two-tier fair scheduling baseline are included for evaluation.
//
// Quick start:
//
//	net, err := e2efair.NewNetwork(e2efair.NetworkSpec{
//	    Nodes: []e2efair.NodeSpec{{Name: "A", X: 0}, {Name: "B", X: 200}, {Name: "C", X: 400}},
//	    Flows: []e2efair.FlowSpec{{ID: "F1", Path: []string{"A", "B", "C"}, Weight: 1}},
//	})
//	alloc, err := net.Allocate(e2efair.StrategyCentralized)
//	res, err := net.Simulate(e2efair.SimConfig{Protocol: e2efair.Protocol2PAC, DurationSec: 100})
package e2efair

import (
	"errors"
	"fmt"
	"sort"

	"e2efair/internal/contention"
	"e2efair/internal/core"
	"e2efair/internal/flow"
	"e2efair/internal/routing"
	"e2efair/internal/topology"
)

// DefaultTxRange is the paper's 250 m transmission range.
const DefaultTxRange = topology.DefaultRange

// NodeSpec places one named node on the plane (meters).
type NodeSpec struct {
	Name string  `json:"name"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

// FlowSpec declares one end-to-end flow. Path lists node names from
// source to destination; with AutoRoute only the endpoints are needed
// and the shortest path is used. Weight defaults to 1.
type FlowSpec struct {
	ID        string   `json:"id"`
	Path      []string `json:"path"`
	Weight    float64  `json:"weight,omitempty"`
	AutoRoute bool     `json:"autoRoute,omitempty"`
}

// NetworkSpec describes a network: nodes, flows and radio ranges.
type NetworkSpec struct {
	Nodes []NodeSpec `json:"nodes"`
	Flows []FlowSpec `json:"flows"`
	// TxRange is the transmission range in meters (default 250).
	TxRange float64 `json:"txRange,omitempty"`
	// InterferenceRange defaults to TxRange.
	InterferenceRange float64 `json:"interferenceRange,omitempty"`
}

// Network is a validated network instance ready for allocation and
// simulation.
type Network struct {
	spec NetworkSpec
	topo *topology.Topology
	set  *flow.Set
	inst *core.Instance
}

// ErrEmptySpec is returned for specs without nodes or flows.
var ErrEmptySpec = errors.New("e2efair: spec needs at least one node and one flow")

// NewNetwork validates the spec, routes flows, and derives the
// contention structure.
func NewNetwork(spec NetworkSpec) (*Network, error) {
	if len(spec.Nodes) == 0 || len(spec.Flows) == 0 {
		return nil, ErrEmptySpec
	}
	txRange := spec.TxRange
	if txRange == 0 {
		txRange = DefaultTxRange
	}
	b := topology.NewBuilder(txRange, spec.InterferenceRange)
	for _, n := range spec.Nodes {
		b.Add(n.Name, n.X, n.Y)
	}
	topo, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("e2efair: %w", err)
	}
	var tbl *routing.Table
	set, err := flow.NewSet()
	if err != nil {
		return nil, err
	}
	for _, fs := range spec.Flows {
		weight := fs.Weight
		if weight == 0 {
			weight = 1
		}
		var path []topology.NodeID
		switch {
		case fs.AutoRoute && len(fs.Path) == 2:
			if tbl == nil {
				tbl = routing.BuildTable(topo)
			}
			src, err := topo.Lookup(fs.Path[0])
			if err != nil {
				return nil, fmt.Errorf("e2efair: flow %s: %w", fs.ID, err)
			}
			dst, err := topo.Lookup(fs.Path[1])
			if err != nil {
				return nil, fmt.Errorf("e2efair: flow %s: %w", fs.ID, err)
			}
			path, err = tbl.Route(src, dst)
			if err != nil {
				return nil, fmt.Errorf("e2efair: flow %s: %w", fs.ID, err)
			}
		default:
			path = make([]topology.NodeID, len(fs.Path))
			for i, name := range fs.Path {
				id, err := topo.Lookup(name)
				if err != nil {
					return nil, fmt.Errorf("e2efair: flow %s: %w", fs.ID, err)
				}
				path[i] = id
			}
		}
		f, err := flow.New(flow.ID(fs.ID), weight, path)
		if err != nil {
			return nil, fmt.Errorf("e2efair: %w", err)
		}
		if err := set.Add(f); err != nil {
			return nil, fmt.Errorf("e2efair: %w", err)
		}
	}
	inst, err := core.NewInstance(topo, set)
	if err != nil {
		return nil, fmt.Errorf("e2efair: %w", err)
	}
	return &Network{spec: spec, topo: topo, set: set, inst: inst}, nil
}

// Strategy selects an allocation algorithm.
type Strategy int

// Allocation strategies.
const (
	// StrategyBasic yields every flow's basic share w_i/Σ w_j·v_j.
	StrategyBasic Strategy = iota + 1
	// StrategyFairness is the strict fairness-constraint allocation
	// w_i·B/ω_Ω (the Prop. 1 upper bound).
	StrategyFairness
	// StrategyCentralized is the paper's centralized first phase: the
	// basic-fairness LP with max-min refinement (2PA-C).
	StrategyCentralized
	// StrategyDistributed is the distributed first phase (2PA-D).
	StrategyDistributed
	// StrategyMaxMin is weighted max-min progressive filling over the
	// clique constraints.
	StrategyMaxMin
	// StrategySingleHop divides B across subflows by weighted flow
	// length (Eq. 2) — the strawman penalizing long flows.
	StrategySingleHop
	// StrategyTwoTier is the per-subflow two-tier baseline of Luo et
	// al.
	StrategyTwoTier
)

var strategyNames = map[Strategy]string{
	StrategyBasic:       "basic",
	StrategyFairness:    "fairness",
	StrategyCentralized: "2pa-c",
	StrategyDistributed: "2pa-d",
	StrategyMaxMin:      "maxmin",
	StrategySingleHop:   "singlehop",
	StrategyTwoTier:     "two-tier",
}

// String names the strategy.
func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// ParseStrategy resolves a strategy name.
func ParseStrategy(name string) (Strategy, error) {
	for s, n := range strategyNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("e2efair: unknown strategy %q", name)
}

// Strategies lists all strategies in a stable order.
func Strategies() []Strategy {
	return []Strategy{
		StrategyBasic, StrategyFairness, StrategyCentralized,
		StrategyDistributed, StrategyMaxMin, StrategySingleHop, StrategyTwoTier,
	}
}

// Allocation is the result of an allocation strategy. Shares are
// fractions of the channel capacity B.
type Allocation struct {
	Strategy Strategy
	// PerFlow maps flow ID to its per-subflow share r̂_i, which under
	// equal per-hop allocation is also its end-to-end throughput.
	PerFlow map[string]float64
	// PerSubflow maps "flow.hop" (1-based hop, the paper's F_{i.j}
	// notation) to the subflow's share.
	PerSubflow map[string]float64
	// Total is Σ_i u_i, the total effective throughput.
	Total float64
}

// Allocate runs the selected strategy.
func (n *Network) Allocate(s Strategy) (*Allocation, error) {
	var perFlow core.FlowAllocation
	var perSub core.SubflowAllocation
	var err error
	switch s {
	case StrategyBasic:
		perFlow = core.BasicShares(n.inst)
	case StrategyFairness:
		perFlow = core.FairnessConstrained(n.inst)
	case StrategyCentralized:
		perFlow, err = core.CentralizedAllocate(n.inst, core.CentralizedOptions{Refine: true})
	case StrategyDistributed:
		var res *core.DistributedResult
		res, err = core.DistributedAllocate(n.inst)
		if res != nil {
			perFlow = res.Shares
		}
	case StrategyMaxMin:
		perFlow = core.MaxMinAllocate(n.inst)
	case StrategySingleHop:
		perFlow = core.SingleHopShares(n.inst)
	case StrategyTwoTier:
		perSub = core.TwoTierAllocate(n.inst)
		perFlow = perSub.EndToEnd(n.set)
	default:
		return nil, fmt.Errorf("e2efair: unknown strategy %d", int(s))
	}
	if err != nil {
		return nil, fmt.Errorf("e2efair: allocate %s: %w", s, err)
	}
	if perSub == nil {
		perSub = perFlow.Uniform(n.set)
	}
	out := &Allocation{
		Strategy:   s,
		PerFlow:    make(map[string]float64, len(perFlow)),
		PerSubflow: make(map[string]float64, len(perSub)),
	}
	for id, r := range perFlow {
		out.PerFlow[string(id)] = r
		out.Total += r
	}
	for id, r := range perSub {
		out.PerSubflow[id.String()] = r
	}
	return out, nil
}

// ContentionReport summarizes the derived contention structure.
type ContentionReport struct {
	// Subflows lists every subflow in F_{i.j} notation.
	Subflows []string
	// Edges lists contending subflow pairs.
	Edges [][2]string
	// Cliques lists the maximal cliques Ω_k.
	Cliques [][]string
	// FlowGroups lists contending flow groups.
	FlowGroups [][]string
	// WeightedCliqueNumber is ω_Ω over the whole graph.
	WeightedCliqueNumber float64
	// Colors is a proper colouring of the contention graph; subflows
	// of equal colour can transmit concurrently.
	Colors map[string]int
}

// Contention reports the network's contention structure.
func (n *Network) Contention() *ContentionReport {
	g := n.inst.Graph
	rep := &ContentionReport{Colors: make(map[string]int)}
	for i := 0; i < g.NumVertices(); i++ {
		rep.Subflows = append(rep.Subflows, g.Subflow(i).ID.String())
	}
	for i := 0; i < g.NumVertices(); i++ {
		for j := i + 1; j < g.NumVertices(); j++ {
			if g.Adjacent(i, j) {
				rep.Edges = append(rep.Edges, [2]string{rep.Subflows[i], rep.Subflows[j]})
			}
		}
	}
	for _, c := range n.inst.Cliques {
		var names []string
		for _, v := range c {
			names = append(names, rep.Subflows[v])
		}
		rep.Cliques = append(rep.Cliques, names)
	}
	for _, grp := range g.FlowGroups() {
		var names []string
		for _, id := range grp {
			names = append(names, string(id))
		}
		rep.FlowGroups = append(rep.FlowGroups, names)
	}
	omega, _ := g.WeightedCliqueNumber()
	rep.WeightedCliqueNumber = omega
	colors, _ := g.GreedyColoring()
	for i, c := range colors {
		rep.Colors[rep.Subflows[i]] = c
	}
	return rep
}

// Flows returns the flow IDs in insertion order.
func (n *Network) Flows() []string {
	out := make([]string, 0, n.set.Len())
	for _, f := range n.set.Flows() {
		out = append(out, string(f.ID()))
	}
	return out
}

// FlowWeight returns a flow's weight w_i.
func (n *Network) FlowWeight(id string) (float64, error) {
	f, err := n.set.Get(flow.ID(id))
	if err != nil {
		return 0, err
	}
	return f.Weight(), nil
}

// FlowPath returns the node-name path of a flow.
func (n *Network) FlowPath(id string) ([]string, error) {
	f, err := n.set.Get(flow.ID(id))
	if err != nil {
		return nil, err
	}
	path := f.Path()
	out := make([]string, len(path))
	for i, nid := range path {
		out[i] = n.topo.Name(nid)
	}
	return out, nil
}

// Nodes returns node names in insertion order.
func (n *Network) Nodes() []string { return n.topo.Names() }

// Instance exposes the underlying allocation instance for advanced
// integrations within this module.
func (n *Network) Instance() *core.Instance { return n.inst }

// Graph exposes the subflow contention graph.
func (n *Network) Graph() *contention.Graph { return n.inst.Graph }

// String renders the allocation as "id=share" pairs in sorted order.
func (a *Allocation) String() string {
	keys := sortedKeys(a.PerFlow)
	s := fmt.Sprintf("%s: total=%.4f", a.Strategy, a.Total)
	for _, k := range keys {
		s += fmt.Sprintf(" %s=%.4f", k, a.PerFlow[k])
	}
	return s
}

// sortedKeys returns map keys sorted, for deterministic rendering.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
