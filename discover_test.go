package e2efair_test

import (
	"testing"

	"e2efair"
)

func meshSpec() e2efair.NetworkSpec {
	return e2efair.NetworkSpec{
		Nodes: []e2efair.NodeSpec{
			{Name: "a", X: 0, Y: 0}, {Name: "b", X: 200, Y: 0},
			{Name: "c", X: 400, Y: 0}, {Name: "d", X: 600, Y: 0},
			{Name: "e", X: 800, Y: 0},
		},
		Flows: []e2efair.FlowSpec{
			{ID: "F1", Path: []string{"a", "e"}},
		},
	}
}

func TestNewNetworkWithDiscovery(t *testing.T) {
	net, disc, err := e2efair.NewNetworkWithDiscovery(meshSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	route := disc.Routes["F1"]
	if len(route) != 5 || route[0] != "a" || route[4] != "e" {
		t.Errorf("discovered route = %v", route)
	}
	if disc.Broadcasts == 0 {
		t.Error("no broadcast cost recorded")
	}
	if disc.LatencySec["F1"] <= 0 {
		t.Errorf("latency = %g", disc.LatencySec["F1"])
	}
	path, err := net.FlowPath("F1")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 5 {
		t.Errorf("network path = %v", path)
	}
	// The discovered network allocates normally.
	alloc, err := net.Allocate(e2efair.StrategyCentralized)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.PerFlow["F1"] <= 0 {
		t.Errorf("allocation = %v", alloc.PerFlow)
	}
}

func TestDiscoveryEmptySpec(t *testing.T) {
	if _, _, err := e2efair.NewNetworkWithDiscovery(e2efair.NetworkSpec{}, 1); err == nil {
		t.Error("empty spec should fail")
	}
}

func TestDiscoveryExplicitPathsPassThrough(t *testing.T) {
	spec := meshSpec()
	spec.Flows = []e2efair.FlowSpec{
		{ID: "F1", Path: []string{"a", "b", "c"}},
	}
	net, disc, err := e2efair.NewNetworkWithDiscovery(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if disc.Broadcasts != 0 {
		t.Errorf("explicit paths should not flood: %d broadcasts", disc.Broadcasts)
	}
	path, err := net.FlowPath("F1")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Errorf("path = %v", path)
	}
}

func TestSimulateReliable(t *testing.T) {
	net, err := e2efair.NewNetwork(e2efair.Figure1Spec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.SimulateReliable(e2efair.ReliableConfig{
		Sim: e2efair.SimConfig{Protocol: e2efair.Protocol2PAC, DurationSec: 10, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalGoodput == 0 {
		t.Fatal("zero goodput")
	}
	if res.PerFlowGoodput["F1"] == 0 || res.PerFlowGoodput["F2"] == 0 {
		t.Errorf("per-flow goodput = %v", res.PerFlowGoodput)
	}
	if res.RetransmissionOverhead > 0.1 {
		t.Errorf("2PA overhead %.3f unexpectedly high", res.RetransmissionOverhead)
	}
	if _, err := net.SimulateReliable(e2efair.ReliableConfig{
		Sim: e2efair.SimConfig{Protocol: "bogus"},
	}); err == nil {
		t.Error("bogus protocol should fail")
	}
}

func TestSimulateDynamicThroughAPI(t *testing.T) {
	net, err := e2efair.NewNetwork(e2efair.Figure1Spec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.SimulateDynamic(
		e2efair.SimConfig{Protocol: e2efair.Protocol2PAC, DurationSec: 30, Seed: 1},
		[]e2efair.ChurnEvent{
			{AtSec: 0, Start: []string{"F1", "F2"}},
			{AtSec: 15, Stop: []string{"F1"}},
		},
		5,
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reallocations != 2 {
		t.Errorf("reallocations = %d", res.Reallocations)
	}
	if res.TotalDelivered == 0 {
		t.Error("nothing delivered")
	}
	wins := res.WindowedPerFlow["F2"]
	if len(wins) < 5 {
		t.Fatalf("windows = %v", wins)
	}
	if wins[len(wins)-1] <= wins[1] {
		t.Errorf("F2 should speed up after F1 stops: %v", wins)
	}
	if len(res.WindowTimesSec) != len(wins) {
		t.Errorf("times/windows mismatch: %d vs %d", len(res.WindowTimesSec), len(wins))
	}
	if _, err := net.SimulateDynamic(e2efair.SimConfig{Protocol: "bogus"}, nil, 0); err == nil {
		t.Error("bogus protocol should fail")
	}
	if _, err := net.SimulateDynamic(
		e2efair.SimConfig{Protocol: e2efair.Protocol2PAC, DurationSec: 1},
		[]e2efair.ChurnEvent{{AtSec: 0, Start: []string{"F9"}}}, 0,
	); err == nil {
		t.Error("unknown flow should fail")
	}
}
