package e2efair

import (
	"fmt"

	"e2efair/internal/dsr"
	"e2efair/internal/netsim"
	"e2efair/internal/sim"
	"e2efair/internal/topology"
	"e2efair/internal/transport"
)

// DiscoveryResult reports the cost of DSR route discovery.
type DiscoveryResult struct {
	// Routes maps flow ID to the discovered node-name path.
	Routes map[string][]string
	// Broadcasts counts RREQ transmissions across the flood.
	Broadcasts int64
	// Replies counts RREP unicast hops.
	Replies int64
	// LatencySec maps flow ID to discovery latency in seconds.
	LatencySec map[string]float64
}

// NewNetworkWithDiscovery builds a network like NewNetwork but
// resolves every two-endpoint flow path by simulating DSR route
// discovery (RREQ flood + RREP) over the topology instead of using an
// oracle shortest path. Flows with explicit multi-node paths are kept
// as given. The discovery simulation shares the radio model with the
// data-plane simulator, so its cost (broadcast storms, collision
// losses, retries) is real.
func NewNetworkWithDiscovery(spec NetworkSpec, seed int64) (*Network, *DiscoveryResult, error) {
	if len(spec.Nodes) == 0 || len(spec.Flows) == 0 {
		return nil, nil, ErrEmptySpec
	}
	txRange := spec.TxRange
	if txRange == 0 {
		txRange = DefaultTxRange
	}
	b := topology.NewBuilder(txRange, spec.InterferenceRange)
	for _, n := range spec.Nodes {
		b.Add(n.Name, n.X, n.Y)
	}
	topo, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("e2efair: %w", err)
	}
	var pairs [][2]topology.NodeID
	pairFlow := make(map[[2]topology.NodeID]string)
	for _, fs := range spec.Flows {
		if len(fs.Path) != 2 {
			continue
		}
		src, err := topo.Lookup(fs.Path[0])
		if err != nil {
			return nil, nil, fmt.Errorf("e2efair: flow %s: %w", fs.ID, err)
		}
		dst, err := topo.Lookup(fs.Path[1])
		if err != nil {
			return nil, nil, fmt.Errorf("e2efair: flow %s: %w", fs.ID, err)
		}
		pair := [2]topology.NodeID{src, dst}
		pairs = append(pairs, pair)
		pairFlow[pair] = fs.ID
	}
	if len(pairs) == 0 {
		net, err := NewNetwork(spec)
		return net, &DiscoveryResult{}, err
	}
	res, err := dsr.Discover(topo, pairs, dsr.Config{Seed: seed})
	if err != nil {
		return nil, nil, fmt.Errorf("e2efair: discovery: %w", err)
	}
	disc := &DiscoveryResult{
		Routes:     make(map[string][]string, len(pairs)),
		Broadcasts: res.Metrics.Broadcasts,
		Replies:    res.Metrics.Replies,
		LatencySec: make(map[string]float64, len(pairs)),
	}
	resolved := spec
	resolved.Flows = make([]FlowSpec, len(spec.Flows))
	copy(resolved.Flows, spec.Flows)
	for i, fs := range resolved.Flows {
		if len(fs.Path) != 2 {
			continue
		}
		src, _ := topo.Lookup(fs.Path[0])
		dst, _ := topo.Lookup(fs.Path[1])
		pair := [2]topology.NodeID{src, dst}
		route := res.Routes[pair]
		names := make([]string, len(route))
		for j, id := range route {
			names[j] = topo.Name(id)
		}
		resolved.Flows[i].Path = names
		resolved.Flows[i].AutoRoute = false
		disc.Routes[fs.ID] = names
		disc.LatencySec[fs.ID] = res.Metrics.Latency[pair].Seconds()
	}
	net, err := NewNetwork(resolved)
	if err != nil {
		return nil, nil, err
	}
	return net, disc, nil
}

// ReliableConfig parameterizes SimulateReliable.
type ReliableConfig struct {
	Sim SimConfig `json:"sim"`
	// Window is the per-flow sliding window in packets (default 16).
	Window int `json:"window,omitempty"`
	// RTOMillis is the retransmission timeout (default 500 ms).
	RTOMillis int `json:"rtoMillis,omitempty"`
	// MaxRetx bounds retransmissions per packet (default 10).
	MaxRetx int `json:"maxRetx,omitempty"`
}

// ReliableResult reports an end-to-end reliable-transport run.
type ReliableResult struct {
	Protocol Protocol `json:"protocol"`
	// PerFlowGoodput maps flow ID to distinct packets delivered.
	PerFlowGoodput map[string]int64 `json:"perFlowGoodput"`
	// TotalGoodput sums goodput over flows.
	TotalGoodput int64 `json:"totalGoodput"`
	// Retransmissions counts repeated source sends across flows.
	Retransmissions int64 `json:"retransmissions"`
	// RetransmissionOverhead is retransmissions / all transmissions.
	RetransmissionOverhead float64 `json:"retransmissionOverhead"`
}

// SimulateReliable runs the flows under a sliding-window reliable
// transport (out-of-band ACKs) over the selected protocol stack,
// reporting goodput and retransmission waste — the paper's "packets
// delivered upstream and dropped downstream waste bandwidth" argument,
// measured.
func (n *Network) SimulateReliable(cfg ReliableConfig) (*ReliableResult, error) {
	proto, err := cfg.Sim.Protocol.internal()
	if err != nil {
		return nil, err
	}
	duration := sim.Time(cfg.Sim.DurationSec * float64(sim.Second))
	res, err := transport.Run(n.inst, transport.Config{
		Net: netsim.Config{
			Protocol:     proto,
			Duration:     duration,
			Seed:         cfg.Sim.Seed,
			PacketsPerS:  cfg.Sim.PacketsPerS,
			PayloadBytes: cfg.Sim.PayloadBytes,
			BitRate:      cfg.Sim.BitRate,
			CWMin:        cfg.Sim.CWMin,
			CWMax:        cfg.Sim.CWMax,
			Alpha:        cfg.Sim.Alpha,
			QueueCap:     cfg.Sim.QueueCap,
			RetryLimit:   cfg.Sim.RetryLimit,
		},
		Window:  cfg.Window,
		RTO:     sim.Time(cfg.RTOMillis) * sim.Millisecond,
		MaxRetx: cfg.MaxRetx,
	})
	if err != nil {
		return nil, fmt.Errorf("e2efair: reliable simulate: %w", err)
	}
	out := &ReliableResult{
		Protocol:       cfg.Sim.Protocol,
		PerFlowGoodput: make(map[string]int64, len(res.PerFlow)),
	}
	var retx, tx int64
	for id, fr := range res.PerFlow {
		out.PerFlowGoodput[string(id)] = fr.Goodput
		out.TotalGoodput += fr.Goodput
		retx += fr.Retransmissions
		tx += fr.Transmissions
	}
	out.Retransmissions = retx
	if tx > 0 {
		out.RetransmissionOverhead = float64(retx) / float64(tx)
	}
	return out, nil
}
