package e2efair

import (
	"fmt"
	"io"

	"e2efair/internal/netsim"
	"e2efair/internal/sim"
	"e2efair/internal/trace"
)

// Protocol names a packet-level protocol stack for Simulate.
type Protocol string

// Protocol stacks.
const (
	// Protocol80211 is plain IEEE 802.11 DCF with per-node FIFO
	// queues and binary exponential backoff.
	Protocol80211 Protocol = "802.11"
	// ProtocolTwoTier drives the tag scheduler with the two-tier
	// baseline's per-subflow shares.
	ProtocolTwoTier Protocol = "two-tier"
	// Protocol2PAC is 2PA with the centralized first phase.
	Protocol2PAC Protocol = "2pa-c"
	// Protocol2PAD is 2PA with the distributed first phase.
	Protocol2PAD Protocol = "2pa-d"
	// ProtocolDFS is the phase-2 ablation: centralized 2PA shares
	// realized by Distributed Fair Scheduling backoff (no service
	// tags).
	ProtocolDFS Protocol = "2pa-dfs"
)

// Protocols lists all simulate-able protocol stacks.
func Protocols() []Protocol {
	return []Protocol{Protocol80211, ProtocolTwoTier, Protocol2PAC, Protocol2PAD, ProtocolDFS}
}

func (p Protocol) internal() (netsim.Protocol, error) {
	switch p {
	case Protocol80211:
		return netsim.Protocol80211, nil
	case ProtocolTwoTier:
		return netsim.ProtocolTwoTier, nil
	case Protocol2PAC:
		return netsim.Protocol2PAC, nil
	case Protocol2PAD:
		return netsim.Protocol2PAD, nil
	case ProtocolDFS:
		return netsim.ProtocolDFS, nil
	default:
		return 0, fmt.Errorf("e2efair: unknown protocol %q", string(p))
	}
}

// SimConfig parameterizes a packet-level simulation. Zero fields take
// the paper's evaluation defaults (1000 s, 200 packets/s CBR, 512-byte
// packets, 2 Mbps channel, CWmin 31, α = 0.0001, 50-packet queues).
type SimConfig struct {
	Protocol     Protocol `json:"protocol"`
	DurationSec  float64  `json:"durationSec,omitempty"`
	Seed         int64    `json:"seed,omitempty"`
	PacketsPerS  float64  `json:"packetsPerS,omitempty"`
	PayloadBytes int      `json:"payloadBytes,omitempty"`
	BitRate      int64    `json:"bitRate,omitempty"`
	CWMin        int      `json:"cwMin,omitempty"`
	CWMax        int      `json:"cwMax,omitempty"`
	Alpha        float64  `json:"alpha,omitempty"`
	QueueCap     int      `json:"queueCap,omitempty"`
	RetryLimit   int      `json:"retryLimit,omitempty"`
	// TraceWriter, when set, receives an ns-2-style line per MAC
	// event (exchange start/end, broadcast, collision, drop).
	TraceWriter io.Writer `json:"-"`
}

// SimResult reports the metrics of the paper's Tables II and III.
type SimResult struct {
	Protocol Protocol `json:"protocol"`
	// DurationSec is the simulated time.
	DurationSec float64 `json:"durationSec"`
	// PerSubflowDelivered maps "flow.hop" (1-based) to packets
	// delivered over that hop (r_{i.j}·T).
	PerSubflowDelivered map[string]int64 `json:"perSubflowDelivered"`
	// PerFlowDelivered maps flow ID to end-to-end deliveries
	// (r̂_i·T).
	PerFlowDelivered map[string]int64 `json:"perFlowDelivered"`
	// TotalDelivered is Σ_i r̂_i·T, the total effective throughput in
	// packets.
	TotalDelivered int64 `json:"totalDelivered"`
	// Lost counts in-flight packets dropped downstream (queue
	// overflow or MAC retry limit after the first hop).
	Lost int64 `json:"lost"`
	// LossRatio is Lost / TotalDelivered, as in the paper's tables.
	LossRatio float64 `json:"lossRatio"`
	// SourceDrops counts packets rejected before their first
	// transmission; they waste no bandwidth and are excluded from
	// LossRatio.
	SourceDrops int64 `json:"sourceDrops"`
	// Collisions counts failed floor acquisitions.
	Collisions int64 `json:"collisions"`
	// SharesUsed is the per-subflow allocation enforced by the
	// scheduler (absent for 802.11).
	SharesUsed map[string]float64 `json:"sharesUsed,omitempty"`
}

// Simulate runs the packet-level simulator over this network.
func (n *Network) Simulate(cfg SimConfig) (*SimResult, error) {
	proto, err := cfg.Protocol.internal()
	if err != nil {
		return nil, err
	}
	duration := sim.Time(cfg.DurationSec * float64(sim.Second))
	if cfg.DurationSec == 0 {
		duration = 0 // netsim default (1000 s)
	}
	netCfg := netsim.Config{
		Protocol:     proto,
		Duration:     duration,
		Seed:         cfg.Seed,
		PacketsPerS:  cfg.PacketsPerS,
		PayloadBytes: cfg.PayloadBytes,
		BitRate:      cfg.BitRate,
		CWMin:        cfg.CWMin,
		CWMax:        cfg.CWMax,
		Alpha:        cfg.Alpha,
		QueueCap:     cfg.QueueCap,
		RetryLimit:   cfg.RetryLimit,
	}
	if cfg.TraceWriter != nil {
		netCfg.Tracer = trace.NewWriter(cfg.TraceWriter, n.topo.Name)
	}
	res, err := netsim.Run(n.inst, netCfg)
	if err != nil {
		return nil, fmt.Errorf("e2efair: simulate: %w", err)
	}
	out := &SimResult{
		Protocol:            cfg.Protocol,
		DurationSec:         res.Duration.Seconds(),
		PerSubflowDelivered: make(map[string]int64),
		PerFlowDelivered:    make(map[string]int64),
		TotalDelivered:      res.Stats.TotalEndToEnd(),
		Lost:                res.Stats.Lost(),
		LossRatio:           res.Stats.LossRatio(),
		SourceDrops:         res.Stats.SourceDrops(),
		Collisions:          res.Stats.Collisions(),
	}
	for _, f := range n.set.Flows() {
		out.PerFlowDelivered[string(f.ID())] = res.Stats.EndToEnd(f.ID())
		for _, s := range f.Subflows() {
			out.PerSubflowDelivered[s.ID.String()] = res.Stats.Subflow(s.ID)
		}
	}
	if res.Shares != nil {
		out.SharesUsed = make(map[string]float64, len(res.Shares))
		for id, share := range res.Shares {
			out.SharesUsed[id.String()] = share
		}
	}
	return out, nil
}
