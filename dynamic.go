package e2efair

import (
	"fmt"

	"e2efair/internal/flow"
	"e2efair/internal/netsim"
	"e2efair/internal/sim"
)

// ChurnEvent starts and stops flows at a point in simulated time.
type ChurnEvent struct {
	AtSec float64  `json:"atSec"`
	Start []string `json:"start,omitempty"`
	Stop  []string `json:"stop,omitempty"`
}

// DynamicResult reports a churn simulation.
type DynamicResult struct {
	SimResult
	// Reallocations counts first-phase recomputations triggered by
	// churn events.
	Reallocations int `json:"reallocations"`
	// WindowedPerFlow maps flow ID to per-window end-to-end delivery
	// counts (window length = SampleEverySec).
	WindowedPerFlow map[string][]int64 `json:"windowedPerFlow,omitempty"`
	// WindowTimesSec lists the sampling instants.
	WindowTimesSec []float64 `json:"windowTimesSec,omitempty"`
}

// SimulateDynamic runs the packet simulator under flow churn: at each
// event the set of backlogged flows changes and — for the
// allocation-driven protocols — the first phase re-runs over the
// active flows, installing new shares into the running schedulers.
// sampleEverySec > 0 additionally records windowed per-flow throughput
// so adaptation is visible.
func (n *Network) SimulateDynamic(cfg SimConfig, events []ChurnEvent, sampleEverySec float64) (*DynamicResult, error) {
	proto, err := cfg.Protocol.internal()
	if err != nil {
		return nil, err
	}
	duration := sim.Time(cfg.DurationSec * float64(sim.Second))
	if cfg.DurationSec == 0 {
		duration = 0
	}
	netEvents := make([]netsim.FlowEvent, len(events))
	for i, ev := range events {
		ne := netsim.FlowEvent{At: sim.Time(ev.AtSec * float64(sim.Second))}
		for _, id := range ev.Start {
			ne.Start = append(ne.Start, flow.ID(id))
		}
		for _, id := range ev.Stop {
			ne.Stop = append(ne.Stop, flow.ID(id))
		}
		netEvents[i] = ne
	}
	res, err := netsim.RunDynamic(n.inst, netsim.Config{
		Protocol:     proto,
		Duration:     duration,
		Seed:         cfg.Seed,
		PacketsPerS:  cfg.PacketsPerS,
		PayloadBytes: cfg.PayloadBytes,
		BitRate:      cfg.BitRate,
		CWMin:        cfg.CWMin,
		CWMax:        cfg.CWMax,
		Alpha:        cfg.Alpha,
		QueueCap:     cfg.QueueCap,
		RetryLimit:   cfg.RetryLimit,
		SampleEvery:  sim.Time(sampleEverySec * float64(sim.Second)),
	}, netEvents)
	if err != nil {
		return nil, fmt.Errorf("e2efair: simulate dynamic: %w", err)
	}
	out := &DynamicResult{
		SimResult: SimResult{
			Protocol:            cfg.Protocol,
			DurationSec:         res.Duration.Seconds(),
			PerSubflowDelivered: make(map[string]int64),
			PerFlowDelivered:    make(map[string]int64),
			TotalDelivered:      res.Stats.TotalEndToEnd(),
			Lost:                res.Stats.Lost(),
			LossRatio:           res.Stats.LossRatio(),
			SourceDrops:         res.Stats.SourceDrops(),
			Collisions:          res.Stats.Collisions(),
		},
		Reallocations: res.Reallocations,
	}
	for _, f := range n.set.Flows() {
		out.PerFlowDelivered[string(f.ID())] = res.Stats.EndToEnd(f.ID())
		for _, s := range f.Subflows() {
			out.PerSubflowDelivered[s.ID.String()] = res.Stats.Subflow(s.ID)
		}
	}
	if res.Series != nil {
		out.WindowedPerFlow = make(map[string][]int64)
		for _, id := range res.Series.Flows() {
			out.WindowedPerFlow[string(id)] = res.Series.Windows(id)
		}
		for _, ts := range res.Series.Times() {
			out.WindowTimesSec = append(out.WindowTimesSec, ts.Seconds())
		}
	}
	return out, nil
}
