// Command adhoc-compare reruns the paper's second evaluation scenario
// (Fig. 6 / Table III): five multi-hop flows over fourteen nodes,
// compared across plain 802.11, the two-tier fair scheduling baseline,
// and 2PA with centralized and distributed first phases.
package main

import (
	"flag"
	"fmt"
	"os"

	"e2efair"
)

func main() {
	durationSec := flag.Float64("duration", 100, "simulated seconds per protocol")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()
	if err := run(*durationSec, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// figure6 recreates the paper's Fig. 6 topology through the public
// API.
func figure6() (*e2efair.Network, error) {
	return e2efair.NewNetwork(e2efair.NetworkSpec{
		Nodes: []e2efair.NodeSpec{
			{Name: "A", X: 0, Y: 0}, {Name: "B", X: 200, Y: 0}, {Name: "C", X: 400, Y: 0},
			{Name: "D", X: 600, Y: 0}, {Name: "E", X: 800, Y: 0},
			{Name: "F", X: 600, Y: 220}, {Name: "G", X: 790, Y: 380},
			{Name: "H", X: 1000, Y: 420}, {Name: "I", X: 1200, Y: 540},
			{Name: "J", X: 1400, Y: 640}, {Name: "K", X: 1600, Y: 740}, {Name: "L", X: 1800, Y: 840},
			{Name: "M", X: 1650, Y: 520}, {Name: "N", X: 1850, Y: 420},
		},
		Flows: []e2efair.FlowSpec{
			{ID: "F1", Path: []string{"A", "B", "C", "D", "E"}},
			{ID: "F2", Path: []string{"F", "G"}},
			{ID: "F3", Path: []string{"H", "I"}},
			{ID: "F4", Path: []string{"J", "K", "L"}},
			{ID: "F5", Path: []string{"M", "N"}},
		},
	})
}

func run(durationSec float64, seed int64) error {
	net, err := figure6()
	if err != nil {
		return err
	}

	fmt.Println("== First-phase allocations (fractions of B) ==")
	for _, s := range []e2efair.Strategy{e2efair.StrategyCentralized, e2efair.StrategyDistributed} {
		alloc, err := net.Allocate(s)
		if err != nil {
			return err
		}
		fmt.Printf("%-6s", s)
		for _, id := range net.Flows() {
			fmt.Printf("  %s=%.4f", id, alloc.PerFlow[id])
		}
		fmt.Printf("  total=%.4f\n", alloc.Total)
	}
	fmt.Println("paper  2PA-C: (1/3, 1/3, 2/3, 1/8, 3/4); 2PA-D: (1/3, 1/5, 1/4, 1/4, 1/2)*")
	fmt.Println("* see EXPERIMENTS.md: our strictly-local 2PA-D rule yields r̂5 = 1/3.")

	fmt.Printf("\n== Packet-level comparison, %.0f simulated seconds ==\n", durationSec)
	subflows := []string{"F1.1", "F1.2", "F1.3", "F1.4", "F2.1", "F3.1", "F4.1", "F4.2", "F5.1"}
	fmt.Printf("%-9s", "protocol")
	for _, sf := range subflows {
		fmt.Printf("%8s", sf)
	}
	fmt.Printf("%9s%7s%7s\n", "totalE2E", "lost", "ratio")
	for _, p := range e2efair.Protocols() {
		res, err := net.Simulate(e2efair.SimConfig{Protocol: p, DurationSec: durationSec, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("%-9s", p)
		for _, sf := range subflows {
			fmt.Printf("%8d", res.PerSubflowDelivered[sf])
		}
		fmt.Printf("%9d%7d%7.3f\n", res.TotalDelivered, res.Lost, res.LossRatio)
	}
	fmt.Println("\nShapes to note (cf. Table III): per-flow throughput under 2PA-C")
	fmt.Println("tracks its allocated shares; both 2PA variants lose almost no")
	fmt.Println("packets in flight, two-tier loses more, 802.11 the most.")
	return nil
}
