// Command quickstart walks through the library on the paper's Fig. 1
// network: two 2-hop flows whose downstream hops contend. It prints
// the contention structure, compares every allocation strategy, and
// runs a short packet-level simulation of 2PA.
package main

import (
	"fmt"
	"os"
	"sort"

	"e2efair"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// The paper's Fig. 1: F1 = A→B→C, F2 = D→E→F. Node C is within
	// range of E, so F1's second hop contends with both hops of F2,
	// while F1's first hop is free of them.
	net, err := e2efair.NewNetwork(e2efair.NetworkSpec{
		Nodes: []e2efair.NodeSpec{
			{Name: "A", X: 0, Y: 0},
			{Name: "B", X: 200, Y: 0},
			{Name: "C", X: 400, Y: 0},
			{Name: "D", X: 600, Y: 200},
			{Name: "E", X: 600, Y: 0},
			{Name: "F", X: 800, Y: 0},
		},
		Flows: []e2efair.FlowSpec{
			{ID: "F1", Path: []string{"A", "B", "C"}},
			{ID: "F2", Path: []string{"D", "E", "F"}},
		},
	})
	if err != nil {
		return err
	}

	rep := net.Contention()
	fmt.Println("== Contention structure ==")
	fmt.Printf("subflows:   %v\n", rep.Subflows)
	fmt.Printf("contending: %v\n", rep.Edges)
	fmt.Printf("cliques:    %v\n", rep.Cliques)
	fmt.Printf("ω_Ω:        %.0f\n", rep.WeightedCliqueNumber)

	fmt.Println("\n== Allocation strategies (shares of channel capacity B) ==")
	for _, s := range e2efair.Strategies() {
		alloc, err := net.Allocate(s)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s total=%.4f  ", s, alloc.Total)
		keys := make([]string, 0, len(alloc.PerFlow))
		for k := range alloc.PerFlow {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%s=%.4f ", k, alloc.PerFlow[k])
		}
		fmt.Println()
	}

	fmt.Println("\n== Packet-level simulation, 60 simulated seconds ==")
	for _, p := range []e2efair.Protocol{e2efair.Protocol80211, e2efair.ProtocolTwoTier, e2efair.Protocol2PAC} {
		res, err := net.Simulate(e2efair.SimConfig{Protocol: p, DurationSec: 60, Seed: 1})
		if err != nil {
			return err
		}
		fmt.Printf("%-8s delivered=%6d lost=%5d lossRatio=%.4f  per-flow=%v\n",
			p, res.TotalDelivered, res.Lost, res.LossRatio, res.PerFlowDelivered)
	}
	fmt.Println("\n2PA delivers the highest end-to-end total with near-zero loss:")
	fmt.Println("the allocation balances each flow's hops, so packets never pile")
	fmt.Println("up at intermediate routers.")
	return nil
}
