// Command mobile runs the epochal mobility extension: nodes move
// under a random waypoint model, routes break and are repaired at
// epoch boundaries, and the 2PA first phase reallocates over the
// reachable flows each epoch.
package main

import (
	"flag"
	"fmt"
	"os"

	"e2efair/internal/mobility"
	"e2efair/internal/netsim"
	"e2efair/internal/sim"
)

func main() {
	speed := flag.Float64("speed", 10, "maximum node speed (m/s)")
	durationSec := flag.Float64("duration", 120, "simulated seconds")
	flag.Parse()
	if err := run(*speed, *durationSec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(maxSpeed, durationSec float64) error {
	cfg := mobility.Config{
		Nodes: 25,
		Waypoint: mobility.WaypointConfig{
			Width: 1200, Height: 900,
			MinSpeed: 1, MaxSpeed: maxSpeed,
			MaxPause: 2 * sim.Second,
		},
		Flows: []mobility.FlowSpec{
			{ID: "F1", Src: 0, Dst: 20},
			{ID: "F2", Src: 3, Dst: 17},
			{ID: "F3", Src: 7, Dst: 22},
		},
		Protocol: netsim.Protocol2PAC,
		Epoch:    10 * sim.Second,
		Duration: sim.Time(durationSec * float64(sim.Second)),
		Seed:     5,
	}
	res, err := mobility.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %7s %7s %9s %10s %6s\n", "t(s)", "routed", "broken", "rerouted", "delivered", "lost")
	for _, ep := range res.Epochs {
		fmt.Printf("%6.0f %7d %7d %9d %10d %6d\n",
			ep.Start.Seconds(), ep.Routed, ep.Broken, ep.Rerouted, ep.Delivered, ep.Lost)
	}
	fmt.Printf("\ntotals: delivered=%d lost=%d routeBreaks=%d unreachable-flow-epochs=%d\n",
		res.TotalDelivered, res.TotalLost, res.RouteBreaks, res.Unreachable)
	fmt.Printf("per-flow: %v\n", res.PerFlow)
	fmt.Println("\nEach epoch the first phase re-solves the clique LP over the")
	fmt.Println("current topology, so shares track both route changes and the")
	fmt.Println("set of reachable flows.")
	return nil
}
