// Command chain demonstrates intra-flow spatial reuse (Sec. II-D of
// the paper): a flow's hops three or more apart can transmit
// concurrently, so the end-to-end throughput of a lone chain flow
// flattens at B/3 once it exceeds three hops — the virtual length.
// The example computes basic shares for chains of growing length and
// validates the claim with the packet simulator.
package main

import (
	"fmt"
	"os"

	"e2efair"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func chainNet(hops int) (*e2efair.Network, error) {
	spec := e2efair.NetworkSpec{}
	names := make([]string, hops+1)
	for i := 0; i <= hops; i++ {
		names[i] = fmt.Sprintf("N%d", i)
		spec.Nodes = append(spec.Nodes, e2efair.NodeSpec{Name: names[i], X: float64(i) * 200})
	}
	spec.Flows = []e2efair.FlowSpec{{ID: "F1", Path: names}}
	return e2efair.NewNetwork(spec)
}

func run() error {
	fmt.Println("== Basic share of a lone chain flow vs. its length ==")
	fmt.Println("hops  virtual-length  basic-share(2PA)  naive-single-hop(Eq.2)")
	for _, hops := range []int{1, 2, 3, 4, 6, 9, 12} {
		net, err := chainNet(hops)
		if err != nil {
			return err
		}
		basic, err := net.Allocate(e2efair.StrategyBasic)
		if err != nil {
			return err
		}
		naive, err := net.Allocate(e2efair.StrategySingleHop)
		if err != nil {
			return err
		}
		v := hops
		if v > 3 {
			v = 3
		}
		fmt.Printf("%4d  %14d  %16.4f  %22.4f\n", hops, v, basic.PerFlow["F1"], naive.PerFlow["F1"])
	}
	fmt.Println()
	fmt.Println("The naive allocation (divide B by hop count) collapses as the")
	fmt.Println("path grows; the virtual length caps the penalty at 3 because")
	fmt.Println("hops 1 and 4 (and 2/5, 3/6, …) transmit concurrently.")

	fmt.Println("\n== Simulation: 6-hop chain, pipelining across hops ==")
	net, err := chainNet(6)
	if err != nil {
		return err
	}
	rep := net.Contention()
	fmt.Printf("colour classes (concurrent hop sets): ")
	classes := map[int][]string{}
	for sf, c := range rep.Colors {
		classes[c] = append(classes[c], sf)
	}
	fmt.Printf("%d colours\n", len(classes))
	res, err := net.Simulate(e2efair.SimConfig{Protocol: e2efair.Protocol2PAC, DurationSec: 120, Seed: 1})
	if err != nil {
		return err
	}
	fmt.Printf("2PA end-to-end delivered: %d packets in %.0f s (%.1f pkt/s)\n",
		res.TotalDelivered, res.DurationSec, float64(res.TotalDelivered)/res.DurationSec)
	res11, err := net.Simulate(e2efair.SimConfig{Protocol: e2efair.Protocol80211, DurationSec: 120, Seed: 1})
	if err != nil {
		return err
	}
	fmt.Printf("802.11 end-to-end delivered: %d packets (%.1f pkt/s), lost in flight: %d\n",
		res11.TotalDelivered, float64(res11.TotalDelivered)/res11.DurationSec, res11.Lost)
	return nil
}
