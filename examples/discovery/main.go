// Command discovery runs the full realistic pipeline the paper
// envisions: routes are found by DSR's flood-based route discovery
// (not an oracle), the discovered multi-hop paths define the subflow
// contention graph, the 2PA first phase allocates shares, and a
// reliable transport measures end-to-end goodput over the phase-2
// scheduler versus plain 802.11.
package main

import (
	"fmt"
	"os"

	"e2efair"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// A 12-node topology; flows declared by endpoints only.
	spec := e2efair.NetworkSpec{
		Nodes: []e2efair.NodeSpec{
			{Name: "n0", X: 0, Y: 0}, {Name: "n1", X: 200, Y: 60},
			{Name: "n2", X: 400, Y: 0}, {Name: "n3", X: 600, Y: 80},
			{Name: "n4", X: 800, Y: 0}, {Name: "n5", X: 1000, Y: 60},
			{Name: "n6", X: 160, Y: 260}, {Name: "n7", X: 400, Y: 300},
			{Name: "n8", X: 640, Y: 320}, {Name: "n9", X: 880, Y: 280},
			{Name: "n10", X: 300, Y: 520}, {Name: "n11", X: 620, Y: 540},
		},
		Flows: []e2efair.FlowSpec{
			{ID: "F1", Path: []string{"n0", "n5"}},   // long west-east flow
			{ID: "F2", Path: []string{"n6", "n9"}},   // middle band
			{ID: "F3", Path: []string{"n10", "n11"}}, // southern hop(s)
		},
	}

	net, disc, err := e2efair.NewNetworkWithDiscovery(spec, 1)
	if err != nil {
		return err
	}
	fmt.Println("== DSR route discovery (packet-accurate flood) ==")
	for _, id := range net.Flows() {
		fmt.Printf("%s: route %v, found after %.3f s\n", id, disc.Routes[id], disc.LatencySec[id])
	}
	fmt.Printf("flood cost: %d RREQ broadcasts, %d RREP hops\n\n", disc.Broadcasts, disc.Replies)

	alloc, err := net.Allocate(e2efair.StrategyCentralized)
	if err != nil {
		return err
	}
	fmt.Println("== 2PA allocation over the discovered routes ==")
	for _, id := range net.Flows() {
		fmt.Printf("%s: share %.4f·B\n", id, alloc.PerFlow[id])
	}

	fmt.Println("\n== Reliable transport (60 s): goodput and retransmission waste ==")
	for _, p := range []e2efair.Protocol{e2efair.Protocol80211, e2efair.Protocol2PAC} {
		res, err := net.SimulateReliable(e2efair.ReliableConfig{
			Sim: e2efair.SimConfig{Protocol: p, DurationSec: 60, Seed: 2},
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-8s goodput=%6d retx=%5d overhead=%.3f per-flow=%v\n",
			p, res.TotalGoodput, res.Retransmissions, res.RetransmissionOverhead, res.PerFlowGoodput)
	}
	fmt.Println("\nUnder 2PA, balanced per-hop shares mean packets rarely die after")
	fmt.Println("consuming upstream airtime, so nearly every transmission is new data.")
	return nil
}
