// Command dynamic demonstrates online reallocation under flow churn:
// on the Fig. 1 topology, flow F1 stops a third of the way in and
// returns for the final third. At each churn event the 2PA first phase
// re-runs over the backlogged flows and the new shares are installed
// into the running schedulers, so F2's share swings between B/4
// (contended) and B/2 (alone).
package main

import (
	"fmt"
	"os"

	"e2efair/internal/flow"
	"e2efair/internal/netsim"
	"e2efair/internal/scenario"
	"e2efair/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	sc, err := scenario.Figure1()
	if err != nil {
		return err
	}
	const dur = 90 * sim.Second
	res, err := netsim.RunDynamic(sc.Inst, netsim.Config{
		Protocol:    netsim.Protocol2PAC,
		Duration:    dur,
		Seed:        1,
		SampleEvery: 5 * sim.Second,
	}, []netsim.FlowEvent{
		{At: 0, Start: []flow.ID{"F1", "F2"}},
		{At: 30 * sim.Second, Stop: []flow.ID{"F1"}},
		{At: 60 * sim.Second, Start: []flow.ID{"F1"}},
	})
	if err != nil {
		return err
	}
	fmt.Printf("reallocations: %d\n\n", res.Reallocations)
	fmt.Println("windowed end-to-end throughput (packets per 5 s window):")
	fmt.Printf("%8s %8s %8s\n", "t(s)", "F1", "F2")
	times := res.Series.Times()
	f1 := res.Series.Windows("F1")
	f2 := res.Series.Windows("F2")
	for i := range times {
		fmt.Printf("%8.0f %8d %8d\n", times[i].Seconds(), f1[i], f2[i])
	}
	fmt.Println("\nF2 roughly doubles while F1 is away (its share grows from B/4")
	fmt.Println("to B/2) and returns to the contended rate when F1 resumes.")
	fmt.Printf("\ntotals: F1=%d F2=%d, lost in flight: %d\n",
		res.Stats.EndToEnd("F1"), res.Stats.EndToEnd("F2"), res.Stats.Lost())
	return nil
}
