// Command pentagon reproduces the paper's Fig. 5: five single-hop
// flows whose contention graph is a 5-cycle. Every clique (edge) has
// weight 2, so Proposition 1 permits B/2 per flow — yet no
// transmission schedule achieves it: time-sharing maximal independent
// sets caps the symmetric rate at 2B/5. The example embeds the
// pentagon geometrically, verifies both numbers, and confirms them
// with the packet simulator.
package main

import (
	"fmt"
	"math"
	"os"

	"e2efair"
	"e2efair/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// pentagonNet embeds five 200 m links on a circle of radius 300 m so
// that consecutive links contend (nearest endpoints ≈ 171 m) while
// non-consecutive ones stay out of range (≥ 476 m).
func pentagonNet() (*e2efair.Network, error) {
	const r = 300.0
	delta := math.Asin(100.0 / r) // half the angle subtended by a link
	spec := e2efair.NetworkSpec{}
	for k := 0; k < 5; k++ {
		phi := 2 * math.Pi * float64(k) / 5
		a := fmt.Sprintf("A%d", k+1)
		b := fmt.Sprintf("B%d", k+1)
		spec.Nodes = append(spec.Nodes,
			e2efair.NodeSpec{Name: a, X: r * math.Cos(phi-delta), Y: r * math.Sin(phi-delta)},
			e2efair.NodeSpec{Name: b, X: r * math.Cos(phi+delta), Y: r * math.Sin(phi+delta)},
		)
		spec.Flows = append(spec.Flows, e2efair.FlowSpec{
			ID: fmt.Sprintf("F%d", k+1), Path: []string{a, b},
		})
	}
	return e2efair.NewNetwork(spec)
}

func run() error {
	net, err := pentagonNet()
	if err != nil {
		return err
	}
	rep := net.Contention()
	fmt.Println("== Pentagon contention graph ==")
	fmt.Printf("edges: %v\n", rep.Edges)
	fmt.Printf("ω_Ω = %.0f → Proposition 1 bound: B/2 per flow, 5B/2 total\n", rep.WeightedCliqueNumber)

	fair, err := net.Allocate(e2efair.StrategyFairness)
	if err != nil {
		return err
	}
	fmt.Printf("fairness-constraint allocation: F1 = %.3f·B (as the bound predicts)\n", fair.PerFlow["F1"])

	// But the bound is not schedulable: check it against the
	// independent-set time-sharing LP.
	g := net.Graph()
	rates := make([]float64, g.NumVertices())
	for i := range rates {
		rates[i] = 0.5
	}
	s, err := core.CheckSchedulable(g, rates)
	if err != nil {
		return err
	}
	fmt.Printf("\nB/2 per flow schedulable? %v (needs %.2f of the channel's time)\n", s.Feasible, s.Load)
	tMax, err := core.MaxSchedulableFairRate(g)
	if err != nil {
		return err
	}
	fmt.Printf("largest schedulable symmetric rate: %.3f·B (= 2/5)\n", tMax)
	for i := range rates {
		rates[i] = tMax
	}
	s2, err := core.CheckSchedulable(g, rates)
	if err != nil {
		return err
	}
	fmt.Println("a realizing schedule (independent sets and time fractions):")
	for _, e := range s2.Schedule {
		var names []string
		for _, v := range e.Set {
			names = append(names, g.Subflow(v).ID.String())
		}
		fmt.Printf("  %.3f of the time: %v\n", e.Fraction, names)
	}

	fmt.Println("\n== Simulation check (90 simulated seconds, 2PA) ==")
	res, err := net.Simulate(e2efair.SimConfig{Protocol: e2efair.Protocol2PAC, DurationSec: 90, Seed: 1})
	if err != nil {
		return err
	}
	// Effective per-packet airtime bounds the per-flow packet rate a
	// share of B can carry; compare achieved rates against B/2.
	fmt.Printf("per-flow delivered: %v\n", res.PerFlowDelivered)
	var min, max int64 = math.MaxInt64, 0
	for _, v := range res.PerFlowDelivered {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	fmt.Printf("min/max per flow: %d/%d — contention forces every flow below the\n", min, max)
	fmt.Println("Prop. 1 bound; the paper uses the LP shares only as scheduling weights.")
	return nil
}
