package e2efair_test

// Benchmark harness: one benchmark per table and figure of the paper,
// plus ablations for the design choices called out in DESIGN.md.
// Simulation benchmarks run a fixed simulated duration per iteration
// and report the paper's metrics (total effective throughput in
// packets/s, loss ratio) via b.ReportMetric; run the full-length
// experiments with cmd/benchtables -duration 1000.

import (
	"fmt"
	"math/rand"
	"testing"

	"e2efair/internal/contention"
	"e2efair/internal/core"
	"e2efair/internal/dsr"
	"e2efair/internal/flow"
	"e2efair/internal/mac"
	"e2efair/internal/mobility"
	"e2efair/internal/netsim"
	"e2efair/internal/scenario"
	"e2efair/internal/sim"
	"e2efair/internal/tdma"
	"e2efair/internal/topology"
	"e2efair/internal/transport"
)

// benchSimDur is the simulated time per benchmark iteration.
const benchSimDur = 30 * sim.Second

func mustScenario(b *testing.B, build func() (*scenario.Scenario, error)) *scenario.Scenario {
	b.Helper()
	sc, err := build()
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

// BenchmarkFig1Allocations regenerates the Fig. 1 worked example:
// fairness-constrained, basic-fairness LP, and two-tier allocations.
func BenchmarkFig1Allocations(b *testing.B) {
	sc := mustScenario(b, scenario.Figure1)
	var total float64
	for i := 0; i < b.N; i++ {
		alloc, err := core.CentralizedAllocate(sc.Inst, core.CentralizedOptions{Refine: true})
		if err != nil {
			b.Fatal(err)
		}
		_ = core.FairnessConstrained(sc.Inst)
		_ = core.TwoTierAllocate(sc.Inst)
		total = alloc.TotalEffectiveThroughput()
	}
	b.ReportMetric(total, "totalB") // paper: 3/4
}

// BenchmarkFig2Fairness regenerates the Fig. 2 fairness comparison.
func BenchmarkFig2Fairness(b *testing.B) {
	single := mustScenario(b, scenario.Figure2Single)
	multi := mustScenario(b, scenario.Figure2Multi)
	var u2 float64
	for i := 0; i < b.N; i++ {
		_ = core.FairnessConstrained(single.Inst)
		alloc, err := core.CentralizedAllocate(multi.Inst, core.CentralizedOptions{Refine: true})
		if err != nil {
			b.Fatal(err)
		}
		u2 = alloc["F2"]
	}
	b.ReportMetric(u2, "F2shareB") // paper: 1/5
}

// BenchmarkChainColoring regenerates Fig. 3: colouring the 6-hop chain
// into three concurrent transmission sets.
func BenchmarkChainColoring(b *testing.B) {
	sc := mustScenario(b, func() (*scenario.Scenario, error) { return scenario.Chain(6) })
	colors := 0
	for i := 0; i < b.N; i++ {
		_, colors = sc.Inst.Graph.GreedyColoring()
	}
	b.ReportMetric(float64(colors), "colors") // paper: 3
}

// BenchmarkFig4LP regenerates the Fig. 4 weighted LP.
func BenchmarkFig4LP(b *testing.B) {
	sc := mustScenario(b, scenario.Figure4)
	var total float64
	for i := 0; i < b.N; i++ {
		alloc, err := core.CentralizedAllocate(sc.Inst, core.CentralizedOptions{Refine: true})
		if err != nil {
			b.Fatal(err)
		}
		total = alloc.TotalEffectiveThroughput()
	}
	b.ReportMetric(total, "totalB") // paper: 3/2
}

// BenchmarkPentagon regenerates Fig. 5: the Prop. 1 bound, its
// non-schedulability, and the true symmetric optimum.
func BenchmarkPentagon(b *testing.B) {
	sc := mustScenario(b, scenario.Pentagon)
	rates := make([]float64, sc.Inst.Graph.NumVertices())
	for i := range rates {
		rates[i] = 0.5
	}
	var tMax float64
	for i := 0; i < b.N; i++ {
		s, err := core.CheckSchedulable(sc.Inst.Graph, rates)
		if err != nil {
			b.Fatal(err)
		}
		if s.Feasible {
			b.Fatal("pentagon B/2 must not be schedulable")
		}
		tMax, err = core.MaxSchedulableFairRate(sc.Inst.Graph)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tMax, "maxFairRateB") // 2/5
}

// BenchmarkFig6LP regenerates the Fig. 6 centralized first phase.
func BenchmarkFig6LP(b *testing.B) {
	sc := mustScenario(b, scenario.Figure6)
	var total float64
	for i := 0; i < b.N; i++ {
		alloc, err := core.CentralizedAllocate(sc.Inst, core.CentralizedOptions{Refine: true})
		if err != nil {
			b.Fatal(err)
		}
		total = alloc.TotalEffectiveThroughput()
	}
	b.ReportMetric(total, "totalB") // 53/24 ≈ 2.2083
}

// BenchmarkTableI regenerates the distributed local optimizations of
// Table I.
func BenchmarkTableI(b *testing.B) {
	sc := mustScenario(b, scenario.Figure6)
	var total float64
	for i := 0; i < b.N; i++ {
		res, err := core.DistributedAllocate(sc.Inst)
		if err != nil {
			b.Fatal(err)
		}
		total = res.Shares.TotalEffectiveThroughput()
	}
	b.ReportMetric(total, "totalB")
}

// simBench runs one protocol over a scenario per iteration and reports
// the paper's metrics.
func simBench(b *testing.B, sc *scenario.Scenario, p netsim.Protocol) {
	b.Helper()
	b.ReportAllocs()
	var last *netsim.Result
	for i := 0; i < b.N; i++ {
		r, err := netsim.Run(sc.Inst, netsim.Config{
			Protocol: p, Duration: benchSimDur, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Stats.TotalEndToEnd())/benchSimDur.Seconds(), "pkt/s")
	b.ReportMetric(last.Stats.LossRatio(), "lossRatio")
}

// BenchmarkTableII regenerates Table II (Fig. 1 topology) per
// protocol.
func BenchmarkTableII(b *testing.B) {
	sc := mustScenario(b, scenario.Figure1)
	for _, p := range []netsim.Protocol{netsim.Protocol80211, netsim.ProtocolTwoTier, netsim.Protocol2PAC} {
		b.Run(p.String(), func(b *testing.B) { simBench(b, sc, p) })
	}
}

// BenchmarkTableIII regenerates Table III (Fig. 6 topology) per
// protocol.
func BenchmarkTableIII(b *testing.B) {
	sc := mustScenario(b, scenario.Figure6)
	for _, p := range []netsim.Protocol{
		netsim.Protocol80211, netsim.ProtocolTwoTier, netsim.Protocol2PAC, netsim.Protocol2PAD,
	} {
		b.Run(p.String(), func(b *testing.B) { simBench(b, sc, p) })
	}
}

// BenchmarkAblationVirtualLength quantifies the value of the virtual
// length cap v = min(l, 3): the basic share of long chains under the
// capped rule versus the naive per-length rule (Eq. 2).
func BenchmarkAblationVirtualLength(b *testing.B) {
	for _, hops := range []int{3, 6, 12} {
		b.Run(fmt.Sprintf("hops=%d", hops), func(b *testing.B) {
			sc := mustScenario(b, func() (*scenario.Scenario, error) { return scenario.Chain(hops) })
			var capped, naive float64
			for i := 0; i < b.N; i++ {
				capped = core.BasicShares(sc.Inst)["F1"]
				naive = core.SingleHopShares(sc.Inst)["F1"]
			}
			b.ReportMetric(capped, "cappedShareB")
			b.ReportMetric(naive, "naiveShareB")
			b.ReportMetric(capped/naive, "gain")
		})
	}
}

// BenchmarkAblationObjective compares the end-to-end objective (2PA)
// against the single-hop-maximizing two-tier baseline across random
// topologies: the paper's core claim is that maximizing single-hop
// throughput sacrifices end-to-end throughput.
func BenchmarkAblationObjective(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	scs := make([]*scenario.Scenario, 8)
	for i := range scs {
		sc, err := scenario.Random(scenario.RandomConfig{
			Nodes: 20, Width: 900, Height: 900, Flows: 4, MaxHops: 5,
		}, rng)
		if err != nil {
			b.Fatal(err)
		}
		scs[i] = sc
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		var sum2pa, sumTT float64
		for _, sc := range scs {
			alloc, err := core.CentralizedAllocate(sc.Inst, core.CentralizedOptions{Refine: true})
			if err != nil {
				b.Fatal(err)
			}
			sum2pa += alloc.TotalEffectiveThroughput()
			sumTT += core.TwoTierAllocate(sc.Inst).EndToEnd(sc.Flows).TotalEffectiveThroughput()
		}
		gain = sum2pa / sumTT
	}
	b.ReportMetric(gain, "e2eGainVsTwoTier")
}

// BenchmarkAblationDistributedGap measures the optimality gap of the
// distributed first phase against the centralized one on random
// topologies.
func BenchmarkAblationDistributedGap(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	scs := make([]*scenario.Scenario, 8)
	for i := range scs {
		sc, err := scenario.Random(scenario.RandomConfig{
			Nodes: 20, Width: 900, Height: 900, Flows: 4, MaxHops: 5,
		}, rng)
		if err != nil {
			b.Fatal(err)
		}
		scs[i] = sc
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		var cent, dist float64
		for _, sc := range scs {
			c, err := core.CentralizedAllocate(sc.Inst, core.CentralizedOptions{Refine: true})
			if err != nil {
				b.Fatal(err)
			}
			d, err := core.DistributedAllocate(sc.Inst)
			if err != nil {
				b.Fatal(err)
			}
			cent += c.TotalEffectiveThroughput()
			dist += d.Shares.TotalEffectiveThroughput()
		}
		ratio = dist / cent
	}
	b.ReportMetric(ratio, "distOverCent")
}

// BenchmarkDistributedAllocate measures the distributed first phase —
// the per-source-node LP fan-out — on the paper's Fig. 6 topology and
// on a 30-node random network, comparing a single-worker Allocator
// against the machine-sized worker pool. The two paths are
// bit-identical by construction (see TestDistributedParallelBitIdentical);
// only the wall clock differs.
func BenchmarkDistributedAllocate(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	random30 := mustScenario(b, func() (*scenario.Scenario, error) {
		return scenario.Random(scenario.RandomConfig{
			Nodes: 30, Width: 1100, Height: 1100, Flows: 8, MaxHops: 6,
		}, rng)
	})
	for _, bc := range []struct {
		name string
		sc   *scenario.Scenario
	}{
		{"fig6", mustScenario(b, scenario.Figure6)},
		{"random30", random30},
	} {
		for _, workers := range []int{1, 0} { // 0 = machine-sized pool
			name := bc.name + "/sequential"
			a := core.NewAllocatorWorkers(1)
			if workers == 0 {
				name = bc.name + "/parallel"
				a = core.NewAllocator()
			}
			b.Run(name, func(b *testing.B) {
				var total float64
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := a.Distributed(bc.sc.Inst)
					if err != nil {
						b.Fatal(err)
					}
					total = res.Shares.TotalEffectiveThroughput()
				}
				b.ReportMetric(total, "totalB")
			})
		}
	}
}

// BenchmarkAblationAlpha sweeps the phase-2 strictness parameter α on
// the Table II scenario: larger α enforces shares more aggressively.
func BenchmarkAblationAlpha(b *testing.B) {
	sc := mustScenario(b, scenario.Figure1)
	for _, alpha := range []float64{0.00001, 0.0001, 0.001} {
		b.Run(fmt.Sprintf("alpha=%g", alpha), func(b *testing.B) {
			var last *netsim.Result
			for i := 0; i < b.N; i++ {
				r, err := netsim.Run(sc.Inst, netsim.Config{
					Protocol: netsim.Protocol2PAC, Duration: benchSimDur,
					Seed: int64(i + 1), Alpha: alpha,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(float64(last.Stats.TotalEndToEnd())/benchSimDur.Seconds(), "pkt/s")
			b.ReportMetric(last.Stats.LossRatio(), "lossRatio")
		})
	}
}

// BenchmarkAblationQueueCap sweeps forwarding queue capacity: larger
// queues absorb short-term imbalance but cannot fix a mismatched
// allocation.
func BenchmarkAblationQueueCap(b *testing.B) {
	sc := mustScenario(b, scenario.Figure1)
	for _, cap := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			for _, p := range []netsim.Protocol{netsim.ProtocolTwoTier, netsim.Protocol2PAC} {
				b.Run(p.String(), func(b *testing.B) {
					var last *netsim.Result
					for i := 0; i < b.N; i++ {
						r, err := netsim.Run(sc.Inst, netsim.Config{
							Protocol: p, Duration: benchSimDur,
							Seed: int64(i + 1), QueueCap: cap,
						})
						if err != nil {
							b.Fatal(err)
						}
						last = r
					}
					b.ReportMetric(last.Stats.LossRatio(), "lossRatio")
				})
			}
		})
	}
}

// randomContentionGraph builds a seeded Erdős–Rényi contention graph
// with n single-hop flows as vertices, the shape of a dense subflow
// contention structure far beyond the paper's scenarios.
func randomContentionGraph(b *testing.B, n int, p float64, seed int64) *contention.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	var subs []flow.Subflow
	for i := 0; i < n; i++ {
		f, err := flow.New(flow.ID(fmt.Sprintf("F%d", i)), 1,
			[]topology.NodeID{topology.NodeID(2 * i), topology.NodeID(2*i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		subs = append(subs, f.Subflows()...)
	}
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	g, err := contention.NewGraphFromEdges(subs, edges)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchCliques enumerates maximal cliques of an n-vertex random graph
// per iteration: the Phase-1 hot path at sizes the bitset rewrite
// targets.
func benchCliques(b *testing.B, n int, p float64) {
	g := randomContentionGraph(b, n, p, 9)
	b.ReportAllocs()
	b.ResetTimer()
	cliques := 0
	for i := 0; i < b.N; i++ {
		cliques = len(g.MaximalCliques())
	}
	b.ReportMetric(float64(cliques), "cliques")
}

func BenchmarkCliques64(b *testing.B)  { benchCliques(b, 64, 0.15) }
func BenchmarkCliques128(b *testing.B) { benchCliques(b, 128, 0.15) }
func BenchmarkCliques256(b *testing.B) { benchCliques(b, 256, 0.10) }

// BenchmarkCliquesVisit128 measures the zero-copy visitor entry point:
// the enumeration inner loop with no per-clique result allocation —
// this is the ~0 allocs/op path.
func BenchmarkCliquesVisit128(b *testing.B) {
	g := randomContentionGraph(b, 128, 0.15, 9)
	g.VisitMaximalCliques(func([]int) {}) // warm the scratch pool
	b.ReportAllocs()
	b.ResetTimer()
	cliques := 0
	for i := 0; i < b.N; i++ {
		cliques = 0
		g.VisitMaximalCliques(func([]int) { cliques++ })
	}
	b.ReportMetric(float64(cliques), "cliques")
}

// BenchmarkCliquesContaining128 measures the distributed first phase's
// per-vertex local enumeration.
func BenchmarkCliquesContaining128(b *testing.B) {
	g := randomContentionGraph(b, 128, 0.15, 9)
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total = len(g.CliquesContaining(i % 128))
	}
	b.ReportMetric(float64(total), "cliques")
}

// BenchmarkParallelSweep compares a (scenario × protocol × seed) sweep
// run sequentially against the RunParallel worker pool. On a
// multi-core host the parallel variant approaches linear scaling; the
// determinism test in internal/netsim pins both to identical results.
func BenchmarkParallelSweep(b *testing.B) {
	sc1 := mustScenario(b, scenario.Figure1)
	sc6 := mustScenario(b, scenario.Figure6)
	jobs := netsim.SweepJobs(
		[]*core.Instance{sc1.Inst, sc6.Inst},
		netsim.Config{Duration: 2 * sim.Second},
		[]netsim.Protocol{netsim.Protocol80211, netsim.ProtocolTwoTier, netsim.Protocol2PAC},
		[]int64{1, 2},
	)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := netsim.RunParallel(jobs, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := netsim.RunParallel(jobs, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulatorEventRate measures raw simulator performance:
// simulated seconds per wall second on the Fig. 6 scenario.
func BenchmarkSimulatorEventRate(b *testing.B) {
	sc := mustScenario(b, scenario.Figure6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := netsim.Run(sc.Inst, netsim.Config{
			Protocol: netsim.Protocol2PAC, Duration: benchSimDur, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(benchSimDur.Seconds()*float64(b.N)/b.Elapsed().Seconds(), "simSec/s")
}

// benchShardTiles is the component count of the sharding benchmark
// scenario: eight disjoint Figure 6 tiles, so an 8-way worker pool can
// run every radio component concurrently.
const benchShardTiles = 8

// mustTiled builds the multi-component sharding workload: disjoint
// copies of Figure 6 spaced beyond interference range.
func mustTiled(b *testing.B, copies int) *scenario.Scenario {
	b.Helper()
	base := mustScenario(b, scenario.Figure6)
	sc, err := scenario.Tiled(base, copies)
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

// benchSimShardDur keeps the tiled runs (8× the Figure 6 event volume)
// at roughly the single-tile benchmark's wall-clock per iteration.
const benchSimShardDur = 10 * sim.Second

func benchSimulatorSharded(b *testing.B, workers int) {
	sc := mustTiled(b, benchShardTiles)
	sh := netsim.NewSharder()
	b.ReportAllocs()
	b.ResetTimer()
	var delivered int64
	for i := 0; i < b.N; i++ {
		r, err := netsim.Run(sc.Inst, netsim.Config{
			Protocol: netsim.Protocol2PAC, Duration: benchSimShardDur, Seed: 1,
			ShardSim: workers > 0, ShardWorkers: workers, Sharder: sh,
		})
		if err != nil {
			b.Fatal(err)
		}
		delivered = r.Stats.TotalEndToEnd()
	}
	b.ReportMetric(benchSimShardDur.Seconds()*float64(b.N)/b.Elapsed().Seconds(), "simSec/s")
	b.ReportMetric(float64(delivered), "pkt/run")
}

// BenchmarkSimulatorEventRateMulti is the single-engine baseline on
// the eight-component tiled scenario; the Sharded variants below run
// the identical workload (byte-identical results) on 1, 4, and 8
// worker engines.
func BenchmarkSimulatorEventRateMulti(b *testing.B)    { benchSimulatorSharded(b, 0) }
func BenchmarkSimulatorEventRateSharded1(b *testing.B) { benchSimulatorSharded(b, 1) }
func BenchmarkSimulatorEventRateSharded4(b *testing.B) { benchSimulatorSharded(b, 4) }
func BenchmarkSimulatorEventRateSharded8(b *testing.B) { benchSimulatorSharded(b, 8) }

// benchMACNodes is the dense random topology size for the MAC
// micro-benchmarks: large enough that interference rows span multiple
// words and neighborhoods overlap heavily.
const benchMACNodes = 30

// benchMACMedium assembles a bare MAC over a dense random topology
// (600 m × 600 m, 250 m tx / 500 m interference range) with FIFO
// schedulers — the contention hot path with no allocator or traffic
// machinery around it.
func benchMACMedium(b *testing.B, hooks mac.Hooks) (*sim.Engine, *mac.Medium, *topology.Topology) {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	tb := topology.NewBuilder(250, 500)
	for i := 0; i < benchMACNodes; i++ {
		tb.Add(fmt.Sprintf("n%d", i), rng.Float64()*600, rng.Float64()*600)
	}
	topo, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine()
	medium, err := mac.NewMedium(eng, topo, mac.Config{Seed: 1}, hooks)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchMACNodes; i++ {
		if err := medium.Attach(topology.NodeID(i), mac.NewFIFO(64, 31, 1023)); err != nil {
			b.Fatal(err)
		}
	}
	return eng, medium, topo
}

// drainMAC injects the packet set and runs the engine until the burst
// resolves (every packet delivered or retry-dropped).
func drainMAC(b *testing.B, eng *sim.Engine, medium *mac.Medium, pkts []*mac.Packet) {
	for _, p := range pkts {
		if _, err := medium.Inject(p); err != nil {
			b.Fatal(err)
		}
	}
	eng.Run(eng.Now() + 10*sim.Second)
}

// BenchmarkMediumResolve measures the unicast contention hot path:
// every node bursts one packet to its nearest neighbor and the medium
// resolves the resulting collision storm. Steady state must not
// allocate — the scratch sets, event free list and queue buffers all
// warm up on the first drain.
func BenchmarkMediumResolve(b *testing.B) {
	delivered := 0
	hooks := mac.Hooks{OnDelivered: func(_ *mac.Packet, _ sim.Time) { delivered++ }}
	eng, medium, topo := benchMACMedium(b, hooks)
	var pkts []*mac.Packet
	for i := 0; i < benchMACNodes; i++ {
		nbrs := topo.Neighbors(topology.NodeID(i))
		if len(nbrs) == 0 {
			continue
		}
		pkts = append(pkts, &mac.Packet{
			Path:         []topology.NodeID{topology.NodeID(i), nbrs[0]},
			PayloadBytes: 512,
		})
	}
	drainMAC(b, eng, medium, pkts) // warm scratch and free lists
	b.ReportAllocs()
	b.ResetTimer()
	delivered = 0
	for i := 0; i < b.N; i++ {
		drainMAC(b, eng, medium, pkts)
	}
	b.ReportMetric(float64(delivered)/float64(b.N), "delivered/op")
}

// BenchmarkBroadcastFanout measures the broadcast reception path: the
// jam-set union and per-neighbor delivery that route discovery leans
// on, again allocation-free in steady state.
func BenchmarkBroadcastFanout(b *testing.B) {
	received := 0
	hooks := mac.Hooks{OnBroadcast: func(_ *mac.Packet, _ topology.NodeID, _ sim.Time) { received++ }}
	eng, medium, _ := benchMACMedium(b, hooks)
	var pkts []*mac.Packet
	for i := 0; i < benchMACNodes; i++ {
		pkts = append(pkts, &mac.Packet{
			Path:         []topology.NodeID{topology.NodeID(i)},
			PayloadBytes: 512,
			Broadcast:    true,
		})
	}
	drainMAC(b, eng, medium, pkts)
	b.ReportAllocs()
	b.ResetTimer()
	received = 0
	for i := 0; i < b.N; i++ {
		drainMAC(b, eng, medium, pkts)
	}
	b.ReportMetric(float64(received)/float64(b.N), "rx/op")
}

// BenchmarkIdealTDMA runs the Sec. III ideal estimator over the Fig. 6
// scenario: the upper bound the practical schedulers are judged
// against.
func BenchmarkIdealTDMA(b *testing.B) {
	sc := mustScenario(b, scenario.Figure6)
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := tdma.RunIdeal2PA(sc.Inst, tdma.Config{Duration: benchSimDur})
		if err != nil {
			b.Fatal(err)
		}
		rate = float64(res.Stats.TotalEndToEnd()) / benchSimDur.Seconds()
	}
	b.ReportMetric(rate, "pkt/s")
}

// BenchmarkTransportGoodput measures reliable-transport goodput and
// retransmission waste per protocol on the Fig. 1 scenario — the
// paper's "wasted bandwidth" argument made concrete.
func BenchmarkTransportGoodput(b *testing.B) {
	sc := mustScenario(b, scenario.Figure1)
	for _, p := range []netsim.Protocol{netsim.Protocol80211, netsim.ProtocolTwoTier, netsim.Protocol2PAC} {
		b.Run(p.String(), func(b *testing.B) {
			var last *transport.Result
			for i := 0; i < b.N; i++ {
				r, err := transport.Run(sc.Inst, transport.Config{
					Net: netsim.Config{Protocol: p, Duration: benchSimDur, Seed: int64(i + 1)},
				})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(float64(last.TotalGoodput())/benchSimDur.Seconds(), "goodput/s")
			b.ReportMetric(last.RetransmissionOverhead(), "retxOverhead")
		})
	}
}

// BenchmarkDSRDiscovery measures route-discovery cost on random
// connected networks.
func BenchmarkDSRDiscovery(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	topo, err := topology.Random(topology.RandomConfig{
		Nodes: 30, Width: 1000, Height: 1000, Connect: true,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	pairs := [][2]topology.NodeID{{0, 29}, {5, 25}, {10, 20}}
	var bcasts int64
	for i := 0; i < b.N; i++ {
		res, err := dsr.Discover(topo, pairs, dsr.Config{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		bcasts = res.Metrics.Broadcasts
	}
	b.ReportMetric(float64(bcasts), "broadcasts")
}

// BenchmarkDynamicChurn measures the cost of reallocation-on-churn:
// flows toggling every 10 simulated seconds on the Fig. 6 scenario.
func BenchmarkDynamicChurn(b *testing.B) {
	sc := mustScenario(b, scenario.Figure6)
	events := []netsim.FlowEvent{
		{At: 0, Start: []flow.ID{"F1", "F2", "F3", "F4", "F5"}},
		{At: 10 * sim.Second, Stop: []flow.ID{"F3"}},
		{At: 20 * sim.Second, Start: []flow.ID{"F3"}, Stop: []flow.ID{"F5"}},
	}
	var reallocs int
	for i := 0; i < b.N; i++ {
		res, err := netsim.RunDynamic(sc.Inst, netsim.Config{
			Protocol: netsim.Protocol2PAC, Duration: benchSimDur, Seed: int64(i + 1),
		}, events)
		if err != nil {
			b.Fatal(err)
		}
		reallocs = res.Reallocations
	}
	b.ReportMetric(float64(reallocs), "reallocations")
}

// BenchmarkMobility measures the epochal mobile pipeline: waypoint
// movement, per-epoch rerouting, reallocation and simulation.
func BenchmarkMobility(b *testing.B) {
	cfg := mobility.Config{
		Nodes: 20,
		Waypoint: mobility.WaypointConfig{
			Width: 1000, Height: 800, MinSpeed: 1, MaxSpeed: 10,
			MaxPause: 2 * sim.Second,
		},
		Flows: []mobility.FlowSpec{
			{ID: "F1", Src: 0, Dst: 15},
			{ID: "F2", Src: 4, Dst: 19},
		},
		Protocol: netsim.Protocol2PAC,
		Epoch:    5 * sim.Second,
		Duration: benchSimDur,
	}
	var breaks int
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := mobility.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		breaks = res.RouteBreaks
	}
	b.ReportMetric(float64(breaks), "routeBreaks")
}
