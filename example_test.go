package e2efair_test

// Runnable godoc examples for the public API.

import (
	"fmt"
	"sort"

	"e2efair"
)

// Example computes the paper's Fig. 1 optimal allocation: flow F1's
// hops contend with both hops of F2, and the basic-fairness LP gives
// (B/2, B/4).
func Example() {
	net, err := e2efair.NewNetwork(e2efair.NetworkSpec{
		Nodes: []e2efair.NodeSpec{
			{Name: "A", X: 0}, {Name: "B", X: 200}, {Name: "C", X: 400},
			{Name: "D", X: 600, Y: 200}, {Name: "E", X: 600}, {Name: "F", X: 800},
		},
		Flows: []e2efair.FlowSpec{
			{ID: "F1", Path: []string{"A", "B", "C"}},
			{ID: "F2", Path: []string{"D", "E", "F"}},
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	alloc, err := net.Allocate(e2efair.StrategyCentralized)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("F1=%.2f F2=%.2f total=%.2f\n", alloc.PerFlow["F1"], alloc.PerFlow["F2"], alloc.Total)
	// Output: F1=0.50 F2=0.25 total=0.75
}

// ExampleNetwork_Contention inspects the derived subflow contention
// graph.
func ExampleNetwork_Contention() {
	net, err := e2efair.NewNetwork(e2efair.Figure1Spec())
	if err != nil {
		fmt.Println(err)
		return
	}
	rep := net.Contention()
	fmt.Println("subflows:", rep.Subflows)
	fmt.Println("omega:", rep.WeightedCliqueNumber)
	// Output:
	// subflows: [F1.1 F1.2 F2.1 F2.2]
	// omega: 3
}

// ExampleNetwork_Allocate compares strategies on the six-hop chain:
// the virtual length caps a lone flow's basic share at B/3 however
// long it grows.
func ExampleNetwork_Allocate() {
	net, err := e2efair.NewNetwork(e2efair.ChainSpec(6))
	if err != nil {
		fmt.Println(err)
		return
	}
	basic, err := net.Allocate(e2efair.StrategyBasic)
	if err != nil {
		fmt.Println(err)
		return
	}
	naive, err := net.Allocate(e2efair.StrategySingleHop)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("basic=%.4f naive=%.4f\n", basic.PerFlow["F1"], naive.PerFlow["F1"])
	// Output: basic=0.3333 naive=0.1667
}

// ExampleParseStrategy resolves strategy names.
func ExampleParseStrategy() {
	names := make([]string, 0, len(e2efair.Strategies()))
	for _, s := range e2efair.Strategies() {
		names = append(names, s.String())
	}
	sort.Strings(names)
	fmt.Println(names)
	// Output: [2pa-c 2pa-d basic fairness maxmin singlehop two-tier]
}

// ExampleBuiltinSpec lists the bundled paper scenarios.
func ExampleBuiltinSpec() {
	spec, err := e2efair.BuiltinSpec("pentagon")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d nodes, %d flows\n", len(spec.Nodes), len(spec.Flows))
	// Output: 10 nodes, 5 flows
}
